"""Workload generators for the multi-stream serving layer.

A scenario is a plain list of :class:`StreamSpec` — which stream
arrives at which scheduling round — so fleets are trivially replayable
and deterministic under a fixed seed.  All generators build on the
scaled configurations of :mod:`repro.experiments.configs`: a scale-S
stream has ``1620 / S`` macroblocks and period ``320e6 / S``, i.e. the
paper's dynamics at 1/S the cost, so fleets of dozens of streams stay
testable.

Generators:

* :func:`steady_fleet` — n identical-shape streams, all present from
  round 0 (the capacity-scaling baseline);
* :func:`heterogeneous_mix` — streams cycling through different scales
  (heavier and lighter periods) and content seeds, the mix on which
  demand-blind arbitration is measurably unfair;
* :func:`poisson_churn` — Poisson arrivals with geometric clip lengths
  (arrival/departure churn);
* :func:`flash_crowd` — a steady base fleet plus a burst of
  simultaneous arrivals at one round (admission-control stress).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.sim.encoder_loop import SimulationConfig

#: Scales used by the heterogeneous mix; all divide 1620.  Smaller
#: scale = heavier stream (more macroblocks, longer period).
MIX_SCALES = (15, 20, 27)


@dataclass(frozen=True)
class IdleDeparture:
    """When an *unbounded* stream hangs up (see ``StreamSpec.lifetime``).

    An always-on source has no clip length to end it, so departure is
    behavioural: each round the session draws a private activity sample
    in [0, 1) and smooths it with an EWMA (``alpha``).  Once the
    smoothed activity stays below ``threshold`` for ``patience``
    consecutive rounds (after a ``min_rounds`` warm-up grace) the camera
    stops and the session drains its backlog like any finite clip.
    ``max_lifetime`` is a hard cap so a pathological draw cannot outlive
    the run.  All draws come from the session's seeded RNG, so departure
    rounds are deterministic and engine-independent.
    """

    alpha: float = 0.3
    threshold: float = 0.4
    patience: int = 3
    min_rounds: int = 8
    max_lifetime: int = 10_000

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("lifetime alpha must be in (0, 1]")
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError("lifetime threshold must be in (0, 1)")
        if self.patience < 1:
            raise ConfigurationError("lifetime patience must be >= 1")
        if self.min_rounds < 1:
            raise ConfigurationError("lifetime min_rounds must be >= 1")
        if self.max_lifetime < self.min_rounds:
            raise ConfigurationError(
                "lifetime max_lifetime must be >= min_rounds"
            )

    def mean_lifetime(self) -> float:
        """Rough expected camera lifetime in rounds (for capacity sizing).

        The EWMA crosses ``threshold`` roughly geometrically once past
        the warm-up; this closed-form estimate is intentionally crude —
        generators use it to size shard capacities, nothing else.
        """
        crossing = max(self.threshold, 1e-9)
        per_round = crossing**self.patience
        # the 0.7 calibration factor matches the empirical mean of the
        # smoothed process over the default parameter region
        expected = self.min_rounds + 0.7 * self.patience / max(per_round, 1e-9)
        return float(min(expected, self.max_lifetime))


@dataclass(frozen=True)
class StreamSpec:
    """One stream's arrival into the fleet.

    ``service_class`` names the stream's SLA tier (see
    :mod:`repro.sla.classes`); ``None`` means unclassed — SLA-aware
    policies serve it best-effort and classless policies ignore it.

    ``lifetime`` switches the stream to *unbounded* mode: the camera
    never runs out of clip (content loops over ``config.frames`` banked
    frames) and the stream departs when the :class:`IdleDeparture`
    policy says it went idle.  ``None`` keeps the classic finite-clip
    semantics.
    """

    name: str
    arrival_round: int
    config: SimulationConfig
    weight: float = 1.0
    service_class: str | None = None
    lifetime: IdleDeparture | None = None

    def __post_init__(self) -> None:
        if self.arrival_round < 0:
            raise ConfigurationError("arrival_round must be >= 0")
        if self.service_class is not None and (
            not isinstance(self.service_class, str) or not self.service_class
        ):
            raise ConfigurationError(
                f"service_class must be a non-empty string or None, "
                f"got {self.service_class!r}"
            )
        if self.lifetime is not None and not isinstance(
            self.lifetime, IdleDeparture
        ):
            raise ConfigurationError(
                f"lifetime must be an IdleDeparture or None, "
                f"got {self.lifetime!r}"
            )

    @property
    def unbounded(self) -> bool:
        return self.lifetime is not None


@dataclass(frozen=True)
class Scenario:
    """A named, replayable stream-arrival schedule."""

    #: Finite scenarios enumerate their arrivals up front; open-ended
    #: subclasses (see :mod:`repro.horizon.sources`) generate them
    #: lazily per round and flip this to ``True`` so runners know the
    #: schedule never drains on its own.
    open_ended = False

    name: str
    specs: tuple[StreamSpec, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.specs)

    def arrivals_at(self, round_index: int) -> list[StreamSpec]:
        return [s for s in self.specs if s.arrival_round == round_index]

    @property
    def last_arrival_round(self) -> int:
        return max((s.arrival_round for s in self.specs), default=0)

    def total_demand(self) -> float:
        """Sum of per-round dedicated-speed demands (cycles)."""
        return sum(s.config.period for s in self.specs)


def steady_fleet(
    count: int,
    frames: int = 30,
    scale: int = 20,
    seed: int = 7,
) -> Scenario:
    """``count`` same-shape streams with distinct content, all at round 0."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    specs = tuple(
        StreamSpec(
            name=f"steady-{i}",
            arrival_round=0,
            config=scaled_config(scale=scale, seed=seed + i, frames=frames),
        )
        for i in range(count)
    )
    return Scenario(name=f"steady[{count}]", specs=specs)


def heterogeneous_mix(
    count: int,
    frames: int = 30,
    seed: int = 7,
    scales: tuple[int, ...] = MIX_SCALES,
    weights: tuple[float, ...] | None = None,
) -> Scenario:
    """Streams cycling through ``scales`` — heavy and light periods mixed.

    Demand-blind (equal-share) arbitration starves the heavy streams on
    this mix; quality-aware arbitration is expected to close the gap.
    """
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    specs = []
    for i in range(count):
        scale = scales[i % len(scales)]
        weight = weights[i % len(weights)] if weights else 1.0
        specs.append(
            StreamSpec(
                name=f"mix-{i}-s{scale}",
                arrival_round=0,
                config=scaled_config(scale=scale, seed=seed + i, frames=frames),
                weight=weight,
            )
        )
    return Scenario(name=f"mix[{count}]", specs=tuple(specs))


def poisson_churn(
    rate: float,
    horizon: int,
    mean_frames: int = 25,
    min_frames: int = 10,
    seed: int = 7,
    scales: tuple[int, ...] = MIX_SCALES,
    initial: int = 0,
) -> Scenario:
    """Poisson(rate) arrivals per round over ``horizon`` rounds.

    Each stream is a finite clip whose length is geometric with mean
    ``mean_frames`` (clamped at ``min_frames``), so departures happen
    naturally as clips end.  ``initial`` streams are present at round 0
    before the Poisson process starts.  Fully deterministic for a fixed
    seed.
    """
    if rate < 0:
        raise ConfigurationError("rate must be >= 0")
    if horizon < 1:
        raise ConfigurationError("horizon must be >= 1")
    if mean_frames < min_frames:
        raise ConfigurationError("mean_frames must be >= min_frames")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x5EED]))
    specs = []
    serial = 0

    def spawn(round_index: int) -> StreamSpec:
        nonlocal serial
        scale = scales[int(rng.integers(len(scales)))]
        frames = max(min_frames, int(rng.geometric(1.0 / mean_frames)))
        spec = StreamSpec(
            name=f"churn-{serial}-s{scale}",
            arrival_round=round_index,
            config=scaled_config(
                scale=scale, seed=seed + 100 + serial, frames=frames
            ),
        )
        serial += 1
        return spec

    for _ in range(initial):
        specs.append(spawn(0))
    for round_index in range(horizon):
        for _ in range(int(rng.poisson(rate))):
            specs.append(spawn(round_index))
    return Scenario(name=f"churn[rate={rate}]", specs=tuple(specs))


def flash_crowd(
    base: int,
    crowd: int,
    crowd_round: int,
    frames: int = 30,
    seed: int = 7,
    scale: int = 20,
) -> Scenario:
    """A steady base fleet plus ``crowd`` simultaneous arrivals later."""
    steady = steady_fleet(base, frames=frames, scale=scale, seed=seed)
    burst = tuple(
        StreamSpec(
            name=f"crowd-{i}",
            arrival_round=crowd_round,
            config=scaled_config(scale=scale, seed=seed + 1000 + i, frames=frames),
        )
        for i in range(crowd)
    )
    return Scenario(
        name=f"flash[{base}+{crowd}@{crowd_round}]",
        specs=steady.specs + burst,
    )


def with_frames(scenario: Scenario, frames: int) -> Scenario:
    """Copy of ``scenario`` with every stream truncated to ``frames``."""
    specs = tuple(
        replace(s, config=replace(s.config, frames=frames))
        for s in scenario.specs
    )
    return Scenario(name=scenario.name, specs=specs)


def with_classes(scenario: Scenario, classes: tuple[str, ...]) -> Scenario:
    """Copy of ``scenario`` with service classes assigned cyclically.

    ``classes`` is a cycle of class names (``None`` entries leave a
    stream unclassed); stream ``i`` in spec order gets
    ``classes[i % len(classes)]``.  This is how the SLA scenario
    generators layer tiers onto the existing arrival generators.
    """
    if not classes:
        raise ConfigurationError("classes cycle must not be empty")
    specs = tuple(
        replace(s, service_class=classes[i % len(classes)])
        for i, s in enumerate(scenario.specs)
    )
    return Scenario(name=scenario.name, specs=specs)
