"""Capacity arbiters: how the shared processor budget is split per round.

Each scheduling round the fleet runner collects one
:class:`CapacityRequest` per active stream and asks the arbiter to
partition the shared capacity.  Every arbiter maintains two invariants
(asserted by tests):

* **conservation** — allocations sum to exactly the offered capacity
  (nothing is dropped, nothing invented), and
* **no starvation** — every active stream receives at least
  ``floor_share`` of its equal share, so a backlogged stream keeps
  draining even when the fairness logic points all surplus elsewhere.

Three policies are provided, mirroring the quality-fair budget
arbitration of Changuel et al. ("Control of Multiple Remote Servers for
Quality-Fair Delivery of Multimedia Contents"):

* :class:`EqualShareArbiter` — capacity / n each, ignoring demand;
* :class:`WeightedShareArbiter` — proportional to ``weight * demand``
  (a stream with twice the period needs twice the cycles per frame);
* :class:`QualityFairArbiter` — a floor plus a surplus steered toward
  the streams whose *recent delivered quality* is lowest, closing the
  quality gap that demand-blind splits open on heterogeneous mixes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CapacityRequest:
    """One stream's per-round capacity request.

    ``demand`` is the cycles/round needed for dedicated-speed service;
    ``recent_quality`` is the normalized [0, 1] recent mean quality
    (nan until the stream has encoded its first frame); ``backlog`` is
    the stream's input-buffer occupancy — informational for now (none
    of the built-in policies read it), reserved for backlog-aware
    arbiters.  ``service_class`` and ``target_quality`` are the SLA
    signals (class name and the session's current — possibly
    renegotiated — normalized quality target); classless arbiters
    ignore both, so non-SLA runs are unaffected.
    """

    stream_id: str
    demand: float
    weight: float = 1.0
    recent_quality: float = math.nan
    backlog: int = 0
    service_class: str | None = None
    target_quality: float = math.nan

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ConfigurationError("demand must be positive")
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")


class CapacityArbiter:
    """Base class: validates inputs, delegates the split, renormalizes."""

    name = "abstract"

    def __init__(self, floor_share: float = 0.25) -> None:
        if not 0.0 <= floor_share <= 1.0:
            raise ConfigurationError("floor_share must be in [0, 1]")
        self.floor_share = floor_share

    def allocate(
        self, requests: list[CapacityRequest], capacity: float
    ) -> dict[str, float]:
        """Partition ``capacity`` cycles across ``requests``."""
        if capacity < 0:
            raise ConfigurationError("capacity must be >= 0")
        if not requests:
            return {}
        ids = [r.stream_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate stream ids in requests")
        floor = self.floor_share * capacity / len(requests)
        surplus = capacity - floor * len(requests)
        shares = self._surplus_shares(requests)
        total = sum(shares)
        if total <= 0:
            shares = [1.0] * len(requests)
            total = float(len(requests))
        return {
            r.stream_id: floor + surplus * share / total
            for r, share in zip(requests, shares)
        }

    def _surplus_shares(self, requests: list[CapacityRequest]) -> list[float]:
        raise NotImplementedError


class EqualShareArbiter(CapacityArbiter):
    """Everybody gets capacity / n — the naive demand-blind split."""

    name = "equal-share"

    def _surplus_shares(self, requests: list[CapacityRequest]) -> list[float]:
        return [1.0] * len(requests)


class WeightedShareArbiter(CapacityArbiter):
    """Proportional to ``weight * demand``.

    With unit weights this is demand-proportional service: every stream
    runs at the same *speed fraction*, whatever its period.
    """

    name = "weighted-share"

    def _surplus_shares(self, requests: list[CapacityRequest]) -> list[float]:
        return [r.weight * r.demand for r in requests]


class QualityFairArbiter(CapacityArbiter):
    """Steer surplus toward the streams with the lowest recent quality.

    Each stream's surplus share is ``weight * demand * deficit^pressure``
    where ``deficit = (1 - recent_quality) + deficit_margin`` in the
    normalized quality scale.  Streams that have not delivered a frame
    yet (nan quality) are treated as maximally deficient, so newcomers
    ramp up quickly.  ``pressure`` controls how aggressively quality
    gaps attract capacity (0 degenerates to the weighted arbiter).
    """

    name = "quality-fair"

    def __init__(
        self,
        floor_share: float = 0.25,
        pressure: float = 2.0,
        deficit_margin: float = 0.05,
    ) -> None:
        super().__init__(floor_share=floor_share)
        if pressure < 0:
            raise ConfigurationError("pressure must be >= 0")
        if deficit_margin <= 0:
            raise ConfigurationError("deficit_margin must be positive")
        self.pressure = pressure
        self.deficit_margin = deficit_margin

    def _surplus_shares(self, requests: list[CapacityRequest]) -> list[float]:
        shares = []
        for r in requests:
            quality = 0.0 if math.isnan(r.recent_quality) else r.recent_quality
            deficit = max(0.0, 1.0 - quality) + self.deficit_margin
            shares.append(r.weight * r.demand * deficit**self.pressure)
        return shares


def make_arbiter(name: str, **kwargs) -> CapacityArbiter:
    """Arbiter factory by policy name.

    Thin alias of the serving layer's ``ARBITERS`` registry
    (:mod:`repro.serving.registry`), kept for existing callers — an
    arbiter registered with :func:`repro.serving.register_arbiter` is
    immediately constructible here too.  The import is deferred so the
    streams layer never depends on the serving package at import time.
    """
    from repro.serving.registry import ARBITERS

    return ARBITERS.create(name, **kwargs)
