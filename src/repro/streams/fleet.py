"""The fleet runner: many QoS-controlled streams on one shared capacity.

:class:`FleetRunner` drives a :class:`~repro.streams.scenarios.Scenario`
round by round:

1. streams arriving this round pass through admission control
   (accept / queue / reject against the remaining feasible capacity);
2. departures may have freed capacity, so the wait queue is re-examined;
3. the capacity arbiter partitions the shared budget across the active
   sessions from their per-round requests (demand, weight, recent
   quality, backlog);
4. every active session advances **one scheduling round** under its
   grant — round-robin interleaving, deterministic order;
5. finished sessions retire, their committed capacity is released.

The run is fully deterministic for a fixed scenario: sessions draw from
seeded generators and the loop orders everything by arrival.  The
result aggregates per-stream :class:`~repro.sim.results.RunResult`s
into fleet-level serving metrics — acceptance ratio, per-stream mean
quality/PSNR, Jain fairness, skip and deadline-miss totals.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.analysis.metrics import jain_fairness_index
from repro.engine import validate_engine
from repro.errors import ConfigurationError
from repro.sim.results import RunResult
from repro.streams.admission import AdmissionController, AdmissionDecision
from repro.streams.arbiter import CapacityArbiter, CapacityRequest
from repro.streams.scenarios import Scenario, StreamSpec
from repro.streams.session import StreamSession


@dataclass(frozen=True)
class StreamOutcome:
    """One served stream's spec, its run, and when it was active.

    ``renegotiations`` counts the mid-stream SLA quality-target steps
    the session executed (0 for classless runs).
    """

    spec: StreamSpec
    result: RunResult
    admitted_round: int
    finished_round: int
    renegotiations: int = 0

    @property
    def rounds_active(self) -> int:
        return self.finished_round - self.admitted_round + 1


def class_breakdown(outcomes, rejected, preempted) -> dict[str, dict]:
    """Per-service-class serving metrics over one result's streams.

    Shared by :class:`FleetResult`,
    :class:`~repro.cluster.runner.ClusterResult`, and
    :class:`~repro.serving.result.ServingResult`.  Unclassed streams
    group under ``"unclassed"``.  ``preempted`` is the subset of
    ``rejected`` evicted from admission queues, so its counts are
    *included* in ``rejected`` (never double-counted in acceptance).
    """
    buckets: dict[str, dict] = {}

    def bucket(service_class):
        key = service_class if service_class is not None else "unclassed"
        return buckets.setdefault(
            key,
            {
                "served": 0,
                "rejected": 0,
                "preempted": 0,
                "renegotiations": 0,
                "qualities": [],
            },
        )

    for outcome in outcomes:
        entry = bucket(outcome.spec.service_class)
        entry["served"] += 1
        entry["renegotiations"] += outcome.renegotiations
        entry["qualities"].append(outcome.result.mean_quality())
    for spec in rejected:
        bucket(spec.service_class)["rejected"] += 1
    for spec in preempted:
        bucket(spec.service_class)["preempted"] += 1

    breakdown: dict[str, dict] = {}
    for name in sorted(buckets):
        entry = buckets.pop(name)
        qualities = entry.pop("qualities")
        finite = [v for v in qualities if np.isfinite(v)]
        decided = entry["served"] + entry["rejected"]
        entry["acceptance_ratio"] = (
            entry["served"] / decided if decided else 1.0
        )
        entry["mean_quality"] = (
            float(np.mean(finite)) if finite else math.nan
        )
        entry["fairness_quality"] = jain_fairness_index(qualities)
        breakdown[name] = entry
    return breakdown


def _normalize_classes(classes) -> dict | None:
    """``service_classes`` runner kwarg -> ``{name: ServiceClass}``.

    Accepts ``None``, a mapping, or an iterable of classes (anything
    with a ``.name``); pure attribute access, so this module never
    imports the SLA package.
    """
    if classes is None:
        return None
    if isinstance(classes, Mapping):
        return dict(classes)
    return {c.name: c for c in classes}


def session_sla_kwargs(spec: StreamSpec, catalog, renegotiation) -> dict:
    """The SLA constructor kwargs a classed spec's session needs.

    Empty for unclassed specs.  ``catalog`` of ``None`` resolves to the
    standard gold/silver/bronze catalog (imported lazily — the streams
    layer never depends on :mod:`repro.sla` at import time); a classed
    spec whose name is missing from the catalog is a configuration
    error caught at session start, not mid-round.
    """
    if spec.service_class is None:
        return {}
    if catalog is None:
        from repro.sla.classes import resolve_classes

        catalog = resolve_classes(None)
    cls = catalog.get(spec.service_class)
    if cls is None:
        raise ConfigurationError(
            f"stream {spec.name!r} declares service class "
            f"{spec.service_class!r}, not in the catalog "
            f"{sorted(catalog)}"
        )
    return {
        "service_class": spec.service_class,
        "quality_target": cls.target_quality,
        "quality_floor": cls.min_quality,
        "renegotiation": renegotiation,
    }


def cross_class_fairness(breakdown: dict[str, dict]) -> float:
    """Jain index over per-class mean quality — Changuel et al.'s
    across-class quality-share criterion (idle classes excluded)."""
    values = [
        entry["mean_quality"]
        for entry in breakdown.values()
        if np.isfinite(entry["mean_quality"])
    ]
    return jain_fairness_index(values)


@dataclass
class FleetResult:
    """Everything a fleet run produced."""

    scenario_name: str
    arbiter_name: str
    capacity: float
    rounds: int
    streams: list[StreamOutcome] = field(default_factory=list)
    rejected: list[StreamSpec] = field(default_factory=list)
    #: subset of ``rejected``: queued specs evicted by priority
    #: admission (each appears in BOTH lists, counted once as rejected)
    preempted: list[StreamSpec] = field(default_factory=list)
    peak_concurrency: int = 0

    # ------------------------------------------------------------------
    # per-stream series
    # ------------------------------------------------------------------

    def per_stream_quality(self) -> list[float]:
        """Mean delivered quality per served stream (nan if all skipped)."""
        return [o.result.mean_quality() for o in self.streams]

    def per_stream_psnr(self) -> list[float]:
        return [o.result.mean_psnr() for o in self.streams]

    def per_stream_skip_ratio(self) -> list[float]:
        return [
            o.result.skip_count / len(o.result) if len(o.result) else math.nan
            for o in self.streams
        ]

    # ------------------------------------------------------------------
    # fleet aggregates
    # ------------------------------------------------------------------

    @property
    def served_count(self) -> int:
        return len(self.streams)

    @property
    def rejected_count(self) -> int:
        return len(self.rejected)

    @property
    def preempted_count(self) -> int:
        return len(self.preempted)

    @property
    def acceptance_ratio(self) -> float:
        offered = self.served_count + self.rejected_count
        return self.served_count / offered if offered else 1.0

    def total_renegotiations(self) -> int:
        return sum(o.renegotiations for o in self.streams)

    def per_class(self) -> dict[str, dict]:
        """Per-service-class metrics (see :func:`class_breakdown`)."""
        return class_breakdown(self.streams, self.rejected, self.preempted)

    def fairness_cross_class(self) -> float:
        """Jain index over per-class mean quality."""
        return cross_class_fairness(self.per_class())

    def fairness_quality(self) -> float:
        """Jain index over per-stream mean quality — the headline metric."""
        return jain_fairness_index(self.per_stream_quality())

    def fairness_psnr(self) -> float:
        return jain_fairness_index(self.per_stream_psnr())

    def mean_quality(self) -> float:
        values = [v for v in self.per_stream_quality() if np.isfinite(v)]
        return float(np.mean(values)) if values else math.nan

    def mean_psnr(self) -> float:
        values = [v for v in self.per_stream_psnr() if np.isfinite(v)]
        return float(np.mean(values)) if values else math.nan

    def total_skips(self) -> int:
        return sum(o.result.skip_count for o in self.streams)

    def total_frames(self) -> int:
        return sum(len(o.result) for o in self.streams)

    def total_deadline_misses(self) -> int:
        return sum(o.result.deadline_miss_count for o in self.streams)

    def summary(self) -> dict:
        """Headline numbers for reports and assertions."""
        return {
            "scenario": self.scenario_name,
            "arbiter": self.arbiter_name,
            "capacity": self.capacity,
            "rounds": self.rounds,
            "served": self.served_count,
            "rejected": self.rejected_count,
            "preempted": self.preempted_count,
            "renegotiations": self.total_renegotiations(),
            "acceptance_ratio": round(self.acceptance_ratio, 4),
            "peak_concurrency": self.peak_concurrency,
            "frames": self.total_frames(),
            "skips": self.total_skips(),
            "deadline_misses": self.total_deadline_misses(),
            "mean_quality": round(self.mean_quality(), 3),
            "mean_psnr": round(self.mean_psnr(), 3),
            "fairness_quality": round(self.fairness_quality(), 4),
            "fairness_psnr": round(self.fairness_psnr(), 4),
        }


class FleetRunner:
    """Round-robin concurrent serving of a stream scenario.

    Parameters
    ----------
    capacity:
        Shared processor cycles available per scheduling round.
    arbiter:
        A :class:`~repro.streams.arbiter.CapacityArbiter`.
    admission:
        Optional :class:`~repro.streams.admission.AdmissionController`.
        ``None`` admits everything (pure arbitration experiments).
        Its capacity should normally equal the runner's.
    constraint_mode / granularity:
        Controller settings applied to every session.
    max_rounds:
        Safety valve against runaway scenarios.
    observers:
        :class:`~repro.serving.observers.RoundObserver` instances whose
        lifecycle hooks (``on_round`` / ``on_admit`` / ``on_reject`` /
        ``on_depart`` / ``on_renegotiate``) fire during ``run``.
        Observers are never read back, so they cannot change results.
    service_classes:
        SLA catalog for classed stream specs — a mapping of name to
        :class:`~repro.sla.classes.ServiceClass` or an iterable of
        classes.  ``None`` lazily falls back to the standard
        gold/silver/bronze catalog the first time a classed spec is
        admitted; classless scenarios never touch it.
    renegotiation:
        Optional stateless mid-stream renegotiation policy applied to
        every classed session (see :mod:`repro.sla.renegotiation`).
    engine:
        Session execution engine (see :mod:`repro.engine`):
        ``"scalar"`` steps sessions one by one, ``"vectorized"`` steps
        all active sessions as numpy batches.  ``"parallel"`` is
        accepted and behaves as ``"vectorized"`` — a fleet is a single
        capacity pool, so there are no independent shards to fan out.
        All engines are bit-identical.
    """

    def __init__(
        self,
        capacity: float,
        arbiter: CapacityArbiter,
        admission: AdmissionController | None = None,
        constraint_mode: str = "both",
        granularity: int = 1,
        max_rounds: int = 100_000,
        observers=(),
        service_classes=None,
        renegotiation=None,
        engine: str = "scalar",
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        self.capacity = capacity
        self.arbiter = arbiter
        self.admission = admission
        self.constraint_mode = constraint_mode
        self.granularity = granularity
        self.max_rounds = max_rounds
        self.observers = tuple(observers)
        self.service_classes = _normalize_classes(service_classes)
        self.renegotiation = renegotiation
        self.engine = validate_engine(engine)

    def reset(self) -> None:
        """Restore the just-constructed state for another ``run``.

        ``run`` builds all per-run state locally; the only thing that
        outlives a run is the admission controller's commitments and
        counters, which this clears.  Arbiters are stateless by
        contract (``allocate`` is pure).  ``run`` calls this on entry
        (matching ``ClusterRunner``), so back-to-back runs on one
        instance replay bit-identically to fresh-runner runs; it is
        public so callers holding a runner can also discard state
        explicitly (see ``tests/serving/test_serving_reset.py``).
        """
        if self.admission is not None:
            self.admission.reset()

    # ------------------------------------------------------------------

    def _session(self, spec: StreamSpec) -> StreamSession:
        return StreamSession(
            stream_id=spec.name,
            config=spec.config,
            constraint_mode=self.constraint_mode,
            granularity=self.granularity,
            weight=spec.weight,
            lifetime=getattr(spec, "lifetime", None),
            **session_sla_kwargs(
                spec, self.service_classes, self.renegotiation
            ),
        )

    def run(self, scenario: Scenario) -> FleetResult:
        """Serve the whole scenario to completion.

        Self-contained: admission state is reset on entry, so replaying
        a scenario on the same runner reproduces it exactly.
        """
        self.reset()
        result = FleetResult(
            scenario_name=scenario.name,
            arbiter_name=getattr(self.arbiter, "name", type(self.arbiter).__name__),
            capacity=self.capacity,
            rounds=0,
        )
        timed = False
        phase_observers: tuple = ()
        if self.observers:
            # imported lazily — the streams layer never depends on
            # repro.serving at import time
            from repro.serving.observers import phase_listeners

            phase_observers = phase_listeners(self.observers)
            timed = bool(phase_observers)
            for observer in self.observers:
                observer.on_capacity(self.capacity, 0)
        active: list[StreamSession] = []
        spec_of: dict[str, StreamSpec] = {}
        admitted_round: dict[str, int] = {}
        round_index = 0
        # open-ended scenarios never drain on their own: max_rounds is
        # their *stop condition* — arrivals end there, live cameras are
        # shut down and the backlog drains — so the runaway safety
        # valve has to sit past the drain tail instead
        open_ended = bool(getattr(scenario, "open_ended", False))
        stop_round = self.max_rounds
        round_limit = 2 * self.max_rounds + 1000 if open_ended else self.max_rounds
        while (
            (
                round_index < stop_round
                if open_ended
                else round_index <= scenario.last_arrival_round
            )
            or active
            or (self.admission is not None and self.admission.queue)
        ):
            if round_index >= round_limit:
                raise ConfigurationError(
                    f"fleet exceeded max_rounds={self.max_rounds}"
                    + (" (open-ended drain did not converge)" if open_ended else "")
                )
            draining = open_ended and round_index >= stop_round
            if draining:
                # stop condition reached: no new frames, no new streams
                for session in active:
                    session.shutdown()
                if self.admission is not None and self.admission.queue:
                    self._flush_queue(result, round_index)
            # 1. arrivals through admission
            t0 = perf_counter() if timed else 0.0
            arrivals = [] if draining else scenario.arrivals_at(round_index)
            for spec in arrivals:
                if self.admission is None:
                    self._admit(spec, round_index, active, spec_of, admitted_round)
                    continue
                verdict = self.admission.offer(spec)
                # a queued spec evicted by this offer is finally
                # rejected here and ONLY here: once in the totals,
                # one on_reject (tests/serving/test_serving_observers)
                for victim in verdict.preempted:
                    result.rejected.append(victim)
                    result.preempted.append(victim)
                    for observer in self.observers:
                        observer.on_preempt(victim, round_index)
                        observer.on_reject(victim, round_index)
                if verdict.decision is AdmissionDecision.ACCEPTED:
                    self._admit(spec, round_index, active, spec_of, admitted_round)
                elif verdict.decision is AdmissionDecision.REJECTED:
                    result.rejected.append(spec)
                    for observer in self.observers:
                        observer.on_reject(spec, round_index)
                # QUEUED specs wait inside the admission controller
            # 2. departures last round may have freed capacity
            if self.admission is not None:
                for spec in self.admission.admit_queued():
                    self._admit(spec, round_index, active, spec_of, admitted_round)
            if timed:
                now = perf_counter()
                for observer in phase_observers:
                    observer.on_phase("admission", now - t0, round_index)
                t0 = now
            # 3 + 4. arbitrate and step
            allocations: dict[str, float] = {}
            if active:
                result.peak_concurrency = max(result.peak_concurrency, len(active))
                requests = [
                    CapacityRequest(
                        stream_id=s.stream_id,
                        demand=s.demand,
                        weight=s.weight,
                        recent_quality=s.normalized_recent_quality(),
                        backlog=s.backlog,
                        service_class=s.service_class,
                        target_quality=s.quality_target,
                    )
                    for s in active
                ]
                allocations = self.arbiter.allocate(requests, self.capacity)
            if timed:
                now = perf_counter()
                for observer in phase_observers:
                    observer.on_phase("arbitration", now - t0, round_index)
                t0 = now
            for observer in self.observers:
                observer.on_round(round_index, allocations, self.capacity)
            if active:
                if self.engine == "scalar":
                    step_of = None
                else:
                    # batched stepping computes every SessionStep up
                    # front; the loop below still applies bookkeeping
                    # and fires hooks in session order, so results and
                    # event logs match the scalar engine bit for bit
                    from repro.engine.vectorized import step_sessions

                    step_of = step_sessions(active, allocations)
                still_active: list[StreamSession] = []
                for session in active:
                    step = (
                        session.step(allocations[session.stream_id])
                        if step_of is None
                        else step_of[session.stream_id]
                    )
                    if step.renegotiated is not None:
                        old, new = step.renegotiated
                        for observer in self.observers:
                            observer.on_renegotiate(
                                session.stream_id, old, new, round_index
                            )
                    if step.finished:
                        spec = spec_of.pop(session.stream_id)
                        outcome = StreamOutcome(
                            spec=spec,
                            result=session.result(),
                            admitted_round=admitted_round.pop(
                                session.stream_id
                            ),
                            finished_round=round_index,
                            renegotiations=session.renegotiation_count,
                        )
                        result.streams.append(outcome)
                        if self.admission is not None:
                            self.admission.release(spec.config)
                        for observer in self.observers:
                            observer.on_depart(outcome, round_index)
                    else:
                        still_active.append(session)
                active = still_active
            if timed:
                now = perf_counter()
                for observer in phase_observers:
                    observer.on_phase("step", now - t0, round_index)
            round_index += 1
        result.rounds = round_index
        return result

    def _flush_queue(self, result: FleetResult, round_index: int) -> None:
        """Reject every queued spec — arrivals are over, the run drains."""
        queue = self.admission.queue
        while queue:
            spec = queue.popleft()
            self.admission.rejected_count += 1
            result.rejected.append(spec)
            for observer in self.observers:
                observer.on_reject(spec, round_index)

    def _admit(
        self,
        spec: StreamSpec,
        round_index: int,
        active: list[StreamSession],
        spec_of: dict[str, StreamSpec],
        admitted_round: dict[str, int],
    ) -> None:
        if spec.name in spec_of:
            raise ConfigurationError(f"duplicate stream name {spec.name!r}")
        session = self._session(spec)
        active.append(session)
        spec_of[spec.name] = spec
        admitted_round[spec.name] = round_index
        for observer in self.observers:
            observer.on_admit(spec, round_index)


def compare_arbiters(
    scenario: Scenario,
    capacity: float,
    arbiters: list[CapacityArbiter],
    admission_factory=None,
    **runner_kwargs,
) -> dict[str, FleetResult]:
    """Run one scenario under several arbiters (fresh admission each).

    The bench and the fairness tests use this to put equal-share and
    quality-fair arbitration side by side on identical workloads.
    """
    results: dict[str, FleetResult] = {}
    for arbiter in arbiters:
        admission = admission_factory(capacity) if admission_factory else None
        runner = FleetRunner(
            capacity=capacity, arbiter=arbiter, admission=admission, **runner_kwargs
        )
        results[arbiter.name] = runner.run(scenario)
    return results
