"""Structured lifecycle events: deterministic JSONL export + loader.

:class:`StructuredEventLog` is a
:class:`~repro.serving.observers.RoundObserver` that serializes every
lifecycle event of a serving run — capacity declarations, per-pool
rounds, admissions, preemptions, rejections, migrations,
renegotiations, and departures (with each departed stream's full
per-frame quality timeline) — into typed records that dump to
**deterministic JSONL**: one JSON object per line, sorted keys, floats
sanitized (``NaN`` becomes ``null`` — skipped frames have no quality).
Two identical runs produce byte-identical logs, so event logs diff
cleanly across commits and CI uploads them as artifacts.

:func:`load_events` / :func:`parse_events` round-trip a log back into
the same record objects for offline analysis
(``repro.analysis.report.timeline_table`` renders one as a per-round
table).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, fields
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.export import canonical_line, clean_value
from repro.serving.observers import RoundObserver

#: Back-compat alias: the canonical JSON-safe copy lives in
#: :mod:`repro.obs.export` now, shared with the trace/incident writers.
_clean = clean_value


@dataclass(frozen=True)
class Event:
    """Base record: every event names its round and (optional) pool."""

    round: int
    shard: str | None

    kind = "event"

    def to_dict(self) -> dict:
        data = _clean(asdict(self))
        data["event"] = self.kind
        return data


@dataclass(frozen=True)
class CapacityEvent(Event):
    """A pool's nominal capacity was declared or changed."""

    capacity: float

    kind = "capacity"


@dataclass(frozen=True)
class RoundEvent(Event):
    """One arbitrated round on one pool: the grants and the pool size."""

    capacity: float
    allocations: dict

    kind = "round"

    def to_dict(self) -> dict:
        data = super().to_dict()
        # insertion order is runner-dependent detail; sorted keys make
        # the line (and the round trip) canonical
        data["allocations"] = {
            k: _clean(v) for k, v in sorted(self.allocations.items())
        }
        return data


@dataclass(frozen=True)
class AdmitEvent(Event):
    """A stream was admitted and its session started."""

    stream: str
    service_class: str | None
    arrival_round: int
    weight: float
    demand: float
    frames: int

    kind = "admit"


@dataclass(frozen=True)
class PreemptEvent(Event):
    """A queued stream was evicted by a higher-priority arrival."""

    stream: str
    service_class: str | None

    kind = "preempt"


@dataclass(frozen=True)
class RejectEvent(Event):
    """A stream was finally rejected."""

    stream: str
    service_class: str | None
    arrival_round: int

    kind = "reject"


@dataclass(frozen=True)
class MigrateEvent(Event):
    """One executed migration move (``shard`` is the source)."""

    stream: str
    dest: str
    move_kind: str

    kind = "migrate"


@dataclass(frozen=True)
class RenegotiateEvent(Event):
    """A session's quality target stepped from ``old`` to ``new``."""

    stream: str
    old_target: float
    new_target: float

    kind = "renegotiate"


@dataclass(frozen=True)
class ScaleEvent(Event):
    """An autoscaler action was applied (``shard`` is always ``None``:
    a scale action is cluster-wide, its per-pool effects arrive as
    capacity / migrate events in the same round)."""

    action: str
    sources: tuple
    capacities: tuple
    created: tuple
    reason: str
    action_id: str

    kind = "scale"


@dataclass(frozen=True)
class AlertEvent(Event):
    """An SLO burn-rate alert transition (``shard`` is always ``None``:
    objectives are cluster-wide).

    ``state`` is ``"firing"`` (both burn windows crossed the
    threshold, once per burn episode) or ``"resolved"`` (both back
    under it); ``budget_remaining`` is the share of the accrued error
    budget left at the transition (negative = overspent).  Emitted by
    :class:`~repro.obs.slo.SloObserver`, interleaved into the event
    stream at the round the transition was evaluated.
    """

    slo: str
    state: str
    fast_burn: float
    slow_burn: float
    budget_remaining: float

    kind = "alert"


@dataclass(frozen=True)
class DepartEvent(Event):
    """A stream finished, with its whole quality timeline.

    ``quality_timeline`` has one entry per scheduled frame; ``None``
    marks skipped frames (their quality is undefined).
    """

    stream: str
    service_class: str | None
    admitted_round: int
    frames: int
    skips: int
    deadline_misses: int
    renegotiations: int
    mean_quality: float | None
    quality_timeline: tuple

    kind = "depart"


#: kind string -> record class, the loader's dispatch table.
EVENT_TYPES = {
    cls.kind: cls
    for cls in (
        CapacityEvent,
        RoundEvent,
        AdmitEvent,
        PreemptEvent,
        RejectEvent,
        MigrateEvent,
        RenegotiateEvent,
        ScaleEvent,
        AlertEvent,
        DepartEvent,
    )
}


def event_from_dict(data: dict) -> Event:
    """One parsed JSONL line back into its typed record."""
    if not isinstance(data, dict) or "event" not in data:
        raise ConfigurationError(
            f"an event record must be a mapping with an 'event' kind, "
            f"got {data!r}"
        )
    kind = data["event"]
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown event kind {kind!r}; "
            f"expected one of {sorted(EVENT_TYPES)}"
        )
    payload = {k: v for k, v in data.items() if k != "event"}
    expected = {f.name for f in fields(cls)}
    unknown = set(payload) - expected
    missing = expected - set(payload)
    if unknown or missing:
        raise ConfigurationError(
            f"event {kind!r}: unknown fields {sorted(unknown)}, "
            f"missing fields {sorted(missing)}"
        )
    if cls is DepartEvent:
        payload["quality_timeline"] = tuple(payload["quality_timeline"])
    if cls is ScaleEvent:
        for key in ("sources", "capacities", "created"):
            payload[key] = tuple(payload[key])
    return cls(**payload)


def event_to_line(event: Event) -> str:
    """One record as its canonical JSONL line (no newline)."""
    return canonical_line(event.to_dict())


def events_to_jsonl(events) -> str:
    """A whole event stream as deterministic JSONL text."""
    return "".join(event_to_line(e) + "\n" for e in events)


def parse_events(text_or_lines) -> list[Event]:
    """JSONL text (or an iterable of lines) back into typed records."""
    if isinstance(text_or_lines, str):
        lines = text_or_lines.splitlines()
    else:
        lines = list(text_or_lines)
    events = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"event log line {lineno} is not valid JSON: {error}"
            ) from None
        events.append(event_from_dict(data))
    return events


def load_events(path) -> list[Event]:
    """Read one JSONL event log from disk."""
    return parse_events(Path(path).read_text())


class StructuredEventLog(RoundObserver):
    """Collects every lifecycle event; optionally streams JSONL to disk.

    Parameters
    ----------
    path:
        Optional output file.  When given, each event's line is written
        as it happens (crash-tolerant logs); :meth:`close` flushes and
        closes the handle (:func:`repro.serve` calls it at run end).
    timelines:
        Include per-frame quality timelines in depart events (the bulky
        part; disable for long-horizon runs where the per-stream mean
        is enough).
    """

    def __init__(self, path=None, timelines: bool = True) -> None:
        self.events: list[Event] = []
        self.path = None if path is None else Path(path)
        self.timelines = timelines
        self._handle = None

    # ------------------------------------------------------------------

    def _emit(self, event: Event) -> None:
        self.events.append(event)
        if self.path is not None:
            if self._handle is None:
                self._handle = open(self.path, "w")
            self._handle.write(event_to_line(event) + "\n")

    def record(self, event: Event) -> None:
        """Append one externally produced record (an observer that
        derives events — :class:`~repro.obs.slo.SloObserver`'s alerts —
        interleaves them here at their deterministic position)."""
        self._emit(event)

    def on_capacity(self, capacity, round_index, shard_id=None):
        self._emit(CapacityEvent(
            round=round_index, shard=shard_id, capacity=capacity,
        ))

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self._emit(RoundEvent(
            round=round_index, shard=shard_id, capacity=capacity,
            allocations=dict(allocations),
        ))

    def on_admit(self, spec, round_index, shard_id=None):
        self._emit(AdmitEvent(
            round=round_index, shard=shard_id, stream=spec.name,
            service_class=spec.service_class,
            arrival_round=spec.arrival_round, weight=spec.weight,
            demand=spec.config.period, frames=spec.config.frames,
        ))

    def on_preempt(self, spec, round_index, shard_id=None):
        self._emit(PreemptEvent(
            round=round_index, shard=shard_id, stream=spec.name,
            service_class=spec.service_class,
        ))

    def on_reject(self, spec, round_index, shard_id=None):
        self._emit(RejectEvent(
            round=round_index, shard=shard_id, stream=spec.name,
            service_class=spec.service_class,
            arrival_round=spec.arrival_round,
        ))

    def on_migrate(self, move, round_index):
        self._emit(MigrateEvent(
            round=round_index, shard=move.source, stream=move.stream_id,
            dest=move.dest, move_kind=move.kind,
        ))

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        self._emit(RenegotiateEvent(
            round=round_index, shard=shard_id, stream=stream_id,
            old_target=old_target, new_target=new_target,
        ))

    def on_scale(self, action, round_index):
        self._emit(ScaleEvent(
            round=round_index, shard=None, action=action.kind,
            sources=tuple(action.shards),
            capacities=tuple(action.capacities),
            created=tuple(action.created), reason=action.reason,
            action_id=action.action_id,
        ))

    def on_depart(self, outcome, round_index, shard_id=None):
        run = outcome.result
        mean = run.mean_quality()
        if self.timelines:
            # single pure-python pass: at typical timeline lengths the
            # fixed cost of a numpy round trip (array + isnan + tolist)
            # exceeds per-element float() conversion
            timeline = tuple(
                None if q != q else q
                for q in (float(f.mean_quality) for f in run.frames)
            )
        else:
            timeline = ()
        self._emit(DepartEvent(
            round=round_index, shard=shard_id, stream=outcome.spec.name,
            service_class=outcome.spec.service_class,
            admitted_round=outcome.admitted_round,
            frames=len(run), skips=run.skip_count,
            deadline_misses=run.deadline_miss_count,
            renegotiations=outcome.renegotiations,
            mean_quality=None if math.isnan(mean) else float(mean),
            quality_timeline=timeline,
        ))

    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """The collected stream as deterministic JSONL text."""
        return events_to_jsonl(self.events)

    def dump(self, path) -> Path:
        """Write the whole collected stream to ``path`` in one shot."""
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path

    def close(self) -> None:
        """Flush and close the streaming handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
