"""Telemetry for the serving stack, attached purely through observers.

Everything in this package is a
:class:`~repro.serving.observers.RoundObserver`; runners never read
observers back, so attaching any combination cannot change a run's
results — the equivalence suite asserts bit-identity.

* :class:`TelemetryObserver` — tumbling-window serving metrics over a
  :class:`MetricsRegistry` of counters/gauges/histograms;
* :class:`StructuredEventLog` — every lifecycle event as deterministic
  JSONL, with a lossless loader (:func:`load_events`);
* :class:`InvariantObserver` — the runtime invariant ledger: named
  serving laws checked live, recording or enforcing;
* :class:`PerfObserver` — controller-phase wall-time breakdown;
* :class:`SloObserver` — rolling error budgets per declared
  :class:`SloSpec`, with multi-window burn-rate :class:`AlertEvent`\\ s;
* :class:`TraceObserver` — one causal span tree per session, linked to
  the capacity/scale events that shaped it;
* :func:`attribute_incidents` — joins the two into ranked
  :class:`Incident` reports, one per fired alert.
"""

from repro.obs.attribution import (
    CAUSE_KINDS,
    CauseShare,
    Incident,
    attribute_incidents,
)
from repro.obs.events import (
    AdmitEvent,
    AlertEvent,
    CapacityEvent,
    DepartEvent,
    Event,
    EVENT_TYPES,
    MigrateEvent,
    PreemptEvent,
    RejectEvent,
    RenegotiateEvent,
    RoundEvent,
    ScaleEvent,
    StructuredEventLog,
    event_from_dict,
    event_to_line,
    events_to_jsonl,
    load_events,
    parse_events,
)
from repro.obs.export import (
    canonical_document,
    canonical_line,
    clean_value,
    export_run,
    write_jsonl,
)
from repro.obs.invariants import (
    INVARIANTS,
    ClassFloors,
    ExactlyOnceRejection,
    GrantConservation,
    Invariant,
    InvariantObserver,
    InvariantViolationError,
    MigrationHeadroom,
    PacingDegrade,
    PacingScaleCooldown,
    ScaleConservation,
    SloBudgetConservation,
    Violation,
    register_invariant,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryObserver,
)
from repro.obs.profiling import PerfObserver
from repro.obs.slo import (
    SloObserver,
    SloReport,
    SloSpec,
    SloTracker,
    resolve_slos,
)
from repro.obs.tracing import (
    Span,
    TraceObserver,
    TraceRecord,
    load_traces,
    parse_traces,
    trace_to_line,
    traces_to_jsonl,
)

__all__ = [
    "AdmitEvent",
    "AlertEvent",
    "CAUSE_KINDS",
    "CapacityEvent",
    "CauseShare",
    "ClassFloors",
    "Counter",
    "DepartEvent",
    "EVENT_TYPES",
    "Event",
    "ExactlyOnceRejection",
    "Gauge",
    "GrantConservation",
    "Histogram",
    "INVARIANTS",
    "Incident",
    "Invariant",
    "InvariantObserver",
    "InvariantViolationError",
    "MetricsRegistry",
    "MigrateEvent",
    "MigrationHeadroom",
    "PacingDegrade",
    "PacingScaleCooldown",
    "PerfObserver",
    "PreemptEvent",
    "RejectEvent",
    "RenegotiateEvent",
    "RoundEvent",
    "ScaleConservation",
    "ScaleEvent",
    "SloBudgetConservation",
    "SloObserver",
    "SloReport",
    "SloSpec",
    "SloTracker",
    "Span",
    "StructuredEventLog",
    "TelemetryObserver",
    "TraceObserver",
    "TraceRecord",
    "Violation",
    "attribute_incidents",
    "canonical_document",
    "canonical_line",
    "clean_value",
    "event_from_dict",
    "event_to_line",
    "events_to_jsonl",
    "export_run",
    "load_events",
    "load_traces",
    "parse_events",
    "parse_traces",
    "register_invariant",
    "resolve_slos",
    "trace_to_line",
    "traces_to_jsonl",
    "write_jsonl",
]
