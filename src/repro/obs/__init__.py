"""Telemetry for the serving stack, attached purely through observers.

Everything in this package is a
:class:`~repro.serving.observers.RoundObserver`; runners never read
observers back, so attaching any combination cannot change a run's
results — the equivalence suite asserts bit-identity.

* :class:`TelemetryObserver` — tumbling-window serving metrics over a
  :class:`MetricsRegistry` of counters/gauges/histograms;
* :class:`StructuredEventLog` — every lifecycle event as deterministic
  JSONL, with a lossless loader (:func:`load_events`);
* :class:`InvariantObserver` — the runtime invariant ledger: named
  serving laws checked live, recording or enforcing;
* :class:`PerfObserver` — controller-phase wall-time breakdown.
"""

from repro.obs.events import (
    AdmitEvent,
    CapacityEvent,
    DepartEvent,
    Event,
    EVENT_TYPES,
    MigrateEvent,
    PreemptEvent,
    RejectEvent,
    RenegotiateEvent,
    RoundEvent,
    ScaleEvent,
    StructuredEventLog,
    event_from_dict,
    event_to_line,
    events_to_jsonl,
    load_events,
    parse_events,
)
from repro.obs.invariants import (
    INVARIANTS,
    ClassFloors,
    ExactlyOnceRejection,
    GrantConservation,
    Invariant,
    InvariantObserver,
    InvariantViolationError,
    MigrationHeadroom,
    PacingDegrade,
    PacingScaleCooldown,
    ScaleConservation,
    Violation,
    register_invariant,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryObserver,
)
from repro.obs.profiling import PerfObserver

__all__ = [
    "AdmitEvent",
    "CapacityEvent",
    "ClassFloors",
    "Counter",
    "DepartEvent",
    "EVENT_TYPES",
    "Event",
    "ExactlyOnceRejection",
    "Gauge",
    "GrantConservation",
    "Histogram",
    "INVARIANTS",
    "Invariant",
    "InvariantObserver",
    "InvariantViolationError",
    "MetricsRegistry",
    "MigrateEvent",
    "MigrationHeadroom",
    "PacingDegrade",
    "PacingScaleCooldown",
    "PerfObserver",
    "PreemptEvent",
    "RejectEvent",
    "RenegotiateEvent",
    "RoundEvent",
    "ScaleConservation",
    "ScaleEvent",
    "StructuredEventLog",
    "TelemetryObserver",
    "Violation",
    "event_from_dict",
    "event_to_line",
    "events_to_jsonl",
    "load_events",
    "parse_events",
    "register_invariant",
]
