"""Per-session causal traces: one span tree per stream, linked across
sessions to the capacity/scale events that shaped them.

"Control of Multiple Remote Servers for Quality-Fair Delivery"
(PAPERS.md) motivates per-stream quality trajectories as the unit of
diagnosis; :class:`TraceObserver` builds exactly that from the
observer hook stream, with no new runner entry points.  Each served
stream becomes a :class:`TraceRecord` — admit (with queue wait) →
per-window grant/quality segments → renegotiate / migrate / preempt
instants → depart — and each instant span carries a **causal edge**
(``attrs["cause"]``) when the hook ordering proves what triggered it:

* a migration fired in the same round as an applied
  :class:`~repro.horizon.autoscaler.ScaleAction` is that action's
  relocation — its cause is the action's ``action_id`` (policy
  migrations fire *earlier* in the round than scale relocations, so
  they never link falsely);
* a downward renegotiation within ``link_window`` rounds of a capacity
  dip on the stream's shard links to that dip
  (``capacity-dip@<shard>:<round>``), or failing that to a recent
  capacity-shrinking scale action.

Besides the per-session records the observer keeps the *cluster-level*
history attribution needs to reason counterfactually — capacity
declarations and dips, applied scale actions, arrivals per round,
migration and down-step rounds (see :mod:`repro.obs.attribution`).

Serialization mirrors the event log: deterministic JSONL (sorted keys,
canonical floats, records ordered by first round then stream id),
byte-identical across reruns and hash seeds, with a lossless
:func:`parse_traces` / :func:`load_traces` loader and an
``analysis.report.trace_table`` renderer.  Like every observer,
attaching it cannot change a run's results.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass, fields
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.export import canonical_line, clean_value
from repro.serving.observers import RoundObserver

SPAN_KINDS = (
    "admit", "grant", "renegotiate", "migrate", "preempt", "reject",
    "depart",
)

TRACE_OUTCOMES = ("served", "rejected", "active")


@dataclass(frozen=True)
class Span:
    """One node of a session's span tree.

    Instant spans (``admit`` / ``renegotiate`` / ``migrate`` /
    ``preempt`` / ``reject`` / ``depart``) have ``start == end``;
    ``grant`` segments cover a window of rounds.  ``attrs`` is a flat
    JSON-native payload per kind; causal edges live under
    ``attrs["cause"]``.
    """

    kind: str
    start: int
    end: int
    shard: str | None
    attrs: dict

    def __post_init__(self) -> None:
        if self.kind not in SPAN_KINDS:
            raise ConfigurationError(
                f"unknown span kind {self.kind!r}; expected one of "
                f"{SPAN_KINDS}"
            )
        # canonical at construction so equality == round-trip equality;
        # the common case (flat JSON-native scalars) skips the
        # recursive cleaning pass — spans are built in bulk on the
        # observer hot path
        attrs = dict(self.attrs)
        for value in attrs.values():
            kind = type(value)
            if kind is float:
                if math.isfinite(value):
                    continue
            elif kind in (str, int, bool, type(None)):
                continue
            attrs = clean_value(attrs)
            break
        object.__setattr__(self, "attrs", attrs)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "shard": self.shard,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Span":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a span must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        missing = known - set(data)
        if unknown or missing:
            raise ConfigurationError(
                f"span: unknown fields {sorted(unknown)}, missing "
                f"fields {sorted(missing)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class TraceRecord:
    """One stream's whole story: identity, outcome, span tree."""

    stream: str
    service_class: str | None
    arrival_round: int
    outcome: str
    spans: tuple

    def __post_init__(self) -> None:
        if self.outcome not in TRACE_OUTCOMES:
            raise ConfigurationError(
                f"trace outcome must be one of {TRACE_OUTCOMES}, "
                f"got {self.outcome!r}"
            )
        object.__setattr__(self, "spans", tuple(self.spans))

    @property
    def first_round(self) -> int:
        return self.spans[0].start if self.spans else self.arrival_round

    def to_dict(self) -> dict:
        return {
            "stream": self.stream,
            "service_class": self.service_class,
            "arrival_round": self.arrival_round,
            "outcome": self.outcome,
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceRecord":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a trace record must be a mapping, got "
                f"{type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        missing = known - set(data)
        if unknown or missing:
            raise ConfigurationError(
                f"trace record: unknown fields {sorted(unknown)}, "
                f"missing fields {sorted(missing)}"
            )
        payload = dict(data)
        spans = payload.pop("spans")
        if not isinstance(spans, (list, tuple)):
            raise ConfigurationError(
                f"trace record spans must be a list, got "
                f"{type(spans).__name__}"
            )
        return cls(
            spans=tuple(Span.from_dict(span) for span in spans), **payload
        )


def trace_to_line(record: TraceRecord) -> str:
    """One record as its canonical JSONL line (no newline)."""
    return canonical_line(record.to_dict())


def traces_to_jsonl(records) -> str:
    """A whole trace log as deterministic JSONL text."""
    return "".join(trace_to_line(r) + "\n" for r in records)


def parse_traces(text_or_lines) -> list[TraceRecord]:
    """JSONL text (or an iterable of lines) back into trace records."""
    import json

    if isinstance(text_or_lines, str):
        lines = text_or_lines.splitlines()
    else:
        lines = list(text_or_lines)
    records = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"trace log line {lineno} is not valid JSON: {error}"
            ) from None
        records.append(TraceRecord.from_dict(data))
    return records


def load_traces(path) -> list[TraceRecord]:
    """Read one JSONL trace log from disk."""
    return parse_traces(Path(path).read_text())


class TraceObserver(RoundObserver):
    """Builds one :class:`TraceRecord` span tree per stream.

    Parameters
    ----------
    path:
        Optional output file; :meth:`close` writes the finished log
        there (trace records finalize at departure, so the log is
        written whole, not streamed).
    segment_rounds:
        Grant/quality segment length in rounds: each served stream's
        timeline is chunked into windows this long, every chunk
        carrying the granted capacity and (filled at departure from
        the session's quality timeline) the mean delivered quality.
    link_window:
        How many rounds after a capacity dip a downward renegotiation
        still links to it causally.
    """

    def __init__(
        self, path=None, segment_rounds: int = 20, link_window: int = 15,
    ) -> None:
        if (
            isinstance(segment_rounds, bool)
            or not isinstance(segment_rounds, int)
            or segment_rounds < 1
        ):
            raise ConfigurationError(
                f"segment_rounds must be an integer >= 1, got "
                f"{segment_rounds!r}"
            )
        if (
            isinstance(link_window, bool)
            or not isinstance(link_window, int)
            or link_window < 0
        ):
            raise ConfigurationError(
                f"link_window must be an integer >= 0, got {link_window!r}"
            )
        self.path = None if path is None else Path(path)
        self.segment_rounds = segment_rounds
        self.link_window = link_window
        self._records: list[TraceRecord] | None = None
        self._live: dict[str, dict] = {}
        self._finished: list[dict] = []
        self._closed = False
        # ---- cluster-level history (attribution's evidence base) ----
        #: every capacity declaration, in hook order.
        self.capacity_log: list[tuple[int, str | None, float]] = []
        #: exogenous capacity dips (scale retirements excluded).
        self.dips: list[dict] = []
        #: applied scale actions, as dicts with their ``action_id``.
        self.scale_actions: list[dict] = []
        #: offered streams per *arrival* round (queued specs count at
        #: their true arrival once a decision hook reveals them).
        self.arrivals: dict[int, int] = {}
        #: round of every executed migration move.
        self.migration_rounds: list[int] = []
        #: (round, service class) of every downward renegotiation.
        self.down_steps: list[tuple[int, str | None]] = []
        self.last_round = 0
        self._capacity: dict = {}
        self._scaling: set = set()
        self._last_scale: tuple[int, str] | None = None
        self._seen: set[str] = set()
        self._class_of: dict[str, str | None] = {}

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------

    def _tick(self, round_index: int) -> None:
        if round_index > self.last_round:
            self.last_round = round_index

    def _offered(self, spec, round_index: int) -> None:
        if spec.name in self._seen:
            return
        self._seen.add(spec.name)
        self._class_of[spec.name] = spec.service_class
        self.arrivals[spec.arrival_round] = (
            self.arrivals.get(spec.arrival_round, 0) + 1
        )

    def _close_segment(self, live: dict, end_round: int) -> None:
        seg = live.get("seg")
        if seg is None:
            return
        live["seg"] = None
        if end_round < seg["start"]:
            return  # migrated/departed before its first arbitrated round
        live["spans"].append({
            "kind": "grant",
            "start": seg["start"],
            "end": end_round,
            "shard": seg["shard"],
            "attrs": {
                "granted": seg["granted"],
                "rounds": seg["rounds"],
                "mean_quality": None,  # filled from the timeline at depart
            },
        })

    def _open_segment(self, live: dict, start_round: int, shard) -> None:
        live["seg"] = {
            "start": start_round, "shard": shard,
            "granted": 0.0, "rounds": 0,
        }

    def _finalize(self, live: dict, outcome: str) -> None:
        live["outcome"] = outcome
        self._finished.append(live)

    def _dip_cause(self, shard, round_index: int) -> str | None:
        for dip in reversed(self.dips):
            if dip["round"] <= round_index - self.link_window:
                break
            if dip["shard"] == shard or shard is None:
                return dip["id"]
        for action in reversed(self.scale_actions):
            if action["round"] <= round_index - self.link_window:
                break
            if action["kind"] in ("remove", "merge"):
                return action["action_id"]
        return None

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------

    def on_capacity(self, capacity, round_index, shard_id=None):
        self._tick(round_index)
        self.capacity_log.append((round_index, shard_id, float(capacity)))
        previous = self._capacity.get(shard_id)
        if shard_id in self._scaling:
            # declarations a scale action promised are provisioning,
            # not dips (the PacingScaleCooldown idiom)
            self._scaling.discard(shard_id)
        elif previous is not None and 0.0 < capacity < previous:
            self.dips.append({
                "id": f"capacity-dip@{shard_id}:{round_index}",
                "round": round_index,
                "shard": shard_id,
                "before": previous,
                "after": float(capacity),
            })
        if capacity <= 0.0:
            self._capacity.pop(shard_id, None)
        else:
            self._capacity[shard_id] = float(capacity)

    def on_scale(self, action, round_index):
        self._tick(round_index)
        self.scale_actions.append({
            "round": round_index,
            "action_id": action.action_id,
            "kind": action.kind,
            "reason": action.reason,
            "shards": list(action.shards),
            "created": list(action.created),
        })
        self._last_scale = (round_index, action.action_id)
        self._scaling.update(action.shards)
        self._scaling.update(action.created)

    def on_admit(self, spec, round_index, shard_id=None):
        self._tick(round_index)
        self._offered(spec, round_index)
        live = {
            "stream": spec.name,
            "service_class": spec.service_class,
            "arrival_round": spec.arrival_round,
            "admitted_round": round_index,
            "shard": shard_id,
            "spans": [{
                "kind": "admit",
                "start": round_index,
                "end": round_index,
                "shard": shard_id,
                "attrs": {
                    "queue_wait": round_index - spec.arrival_round,
                },
            }],
            "seg": None,
        }
        self._live[spec.name] = live
        self._open_segment(live, round_index, shard_id)

    def on_preempt(self, spec, round_index, shard_id=None):
        self._tick(round_index)
        self._offered(spec, round_index)
        # a preempted spec was queued, never admitted: start its
        # (short) record here; the paired on_reject finalizes it
        self._live[spec.name] = {
            "stream": spec.name,
            "service_class": spec.service_class,
            "arrival_round": spec.arrival_round,
            "admitted_round": None,
            "shard": shard_id,
            "spans": [{
                "kind": "preempt",
                "start": round_index,
                "end": round_index,
                "shard": shard_id,
                "attrs": {},
            }],
            "seg": None,
        }

    def on_reject(self, spec, round_index, shard_id=None):
        self._tick(round_index)
        self._offered(spec, round_index)
        live = self._live.pop(spec.name, None)
        if live is None:
            live = {
                "stream": spec.name,
                "service_class": spec.service_class,
                "arrival_round": spec.arrival_round,
                "admitted_round": None,
                "shard": shard_id,
                "spans": [],
                "seg": None,
            }
        live["spans"].append({
            "kind": "reject",
            "start": round_index,
            "end": round_index,
            "shard": shard_id,
            "attrs": {"queue_wait": round_index - spec.arrival_round},
        })
        self._finalize(live, "rejected")

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self._tick(round_index)
        if not allocations:
            return
        segment_rounds = self.segment_rounds
        for stream_id, grant in allocations.items():
            live = self._live.get(stream_id)
            if live is None:
                continue
            seg = live["seg"]
            if seg is None:
                continue
            if round_index - seg["start"] >= segment_rounds:
                self._close_segment(live, round_index - 1)
                self._open_segment(live, round_index, live["shard"])
                seg = live["seg"]
            seg["granted"] += grant
            seg["rounds"] += 1

    def on_migrate(self, move, round_index):
        self._tick(round_index)
        self.migration_rounds.append(round_index)
        live = self._live.get(move.stream_id)
        if live is None:
            return
        cause = None
        if self._last_scale is not None and self._last_scale[0] == round_index:
            # scale relocations fire in the same round as (and after)
            # their on_scale; policy moves fire earlier in the round
            cause = self._last_scale[1]
        self._close_segment(live, round_index - 1)
        live["spans"].append({
            "kind": "migrate",
            "start": round_index,
            "end": round_index,
            "shard": move.source,
            "attrs": {
                "dest": move.dest,
                "move_kind": move.kind,
                "cause": cause,
            },
        })
        live["shard"] = move.dest
        if move.kind == "active":
            self._open_segment(live, round_index, move.dest)

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        self._tick(round_index)
        live = self._live.get(stream_id)
        down = new_target < old_target
        if down:
            self.down_steps.append(
                (round_index, self._class_of.get(stream_id))
            )
        if live is None:
            return
        cause = (
            self._dip_cause(live["shard"], round_index) if down else None
        )
        live["spans"].append({
            "kind": "renegotiate",
            "start": round_index,
            "end": round_index,
            "shard": live["shard"],
            "attrs": {
                "old_target": old_target,
                "new_target": new_target,
                "cause": cause,
            },
        })

    def on_depart(self, outcome, round_index, shard_id=None):
        self._tick(round_index)
        live = self._live.pop(outcome.spec.name, None)
        if live is None:
            return
        self._close_segment(live, round_index)
        run = outcome.result
        mean = run.mean_quality()
        # plain floats up front: the segment windows below then hold
        # JSON-native scalars and their spans skip the cleaning pass
        timeline = run.quality_series().tolist()
        admitted = live["admitted_round"]
        for span in live["spans"]:
            # grant windows align 1:1 with session frames (one step per
            # active round); fill each segment's delivered quality
            if span["kind"] != "grant" or admitted is None:
                continue
            lo = max(0, span["start"] - admitted)
            hi = min(len(timeline) - 1, span["end"] - admitted)
            window = [
                q for q in timeline[lo:hi + 1] if not math.isnan(q)
            ]
            span["attrs"]["mean_quality"] = (
                sum(window) / len(window) if window else None
            )
        live["spans"].append({
            "kind": "depart",
            "start": round_index,
            "end": round_index,
            "shard": shard_id,
            "attrs": {
                "frames": len(run),
                "skips": run.skip_count,
                "renegotiations": outcome.renegotiations,
                "mean_quality": None if math.isnan(mean) else float(mean),
            },
        })
        self._finalize(live, "served")

    # ------------------------------------------------------------------
    # finalization + queries
    # ------------------------------------------------------------------

    def _build(self, live: dict, outcome: str) -> TraceRecord:
        spans = sorted(live["spans"], key=lambda span: span["start"])
        return TraceRecord(
            stream=live["stream"],
            service_class=live["service_class"],
            arrival_round=live["arrival_round"],
            outcome=outcome,
            spans=tuple(Span(**span) for span in spans),
        )

    def records(self) -> tuple[TraceRecord, ...]:
        """Every finished record, ordered by (first round, stream id).

        Closes the observer if still open (streams active at the end
        of an open-ended run get ``outcome="active"`` records).
        """
        self.close()
        return self._records

    def close(self) -> None:
        """Finalize still-active streams, fix the record order, and
        write ``path`` if one was given.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for name in sorted(self._live):
            live = self._live[name]
            self._close_segment(live, self.last_round)
            self._finalize(live, "active")
        self._live.clear()
        records = [
            self._build(live, live["outcome"]) for live in self._finished
        ]
        records.sort(key=lambda r: (r.first_round, r.stream))
        self._records = tuple(records)
        if self.path is not None:
            self.dump(self.path)

    def to_jsonl(self) -> str:
        """The finished trace log as deterministic JSONL text."""
        return traces_to_jsonl(self.records())

    def dump(self, path) -> Path:
        """Write the whole trace log to ``path`` in one shot."""
        path = Path(path)
        path.write_text(self.to_jsonl())
        return path
