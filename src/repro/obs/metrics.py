"""Windowed serving metrics: counters, gauges, histograms, tumbling windows.

:class:`TelemetryObserver` turns the runners' lifecycle hooks into the
continuous signals the long-horizon work (autoscaling, capacity
planning) needs: per-window acceptance, mean/min delivered quality,
per-class Jain fairness, mean headroom, and renegotiation density over
**tumbling windows** of scheduling rounds.  Everything is queryable
mid-run — ``current()`` summarizes the in-progress window, ``windows``
holds every closed one — and totals accumulate in a small
:class:`MetricsRegistry` of named instruments.

The observer only *reads* hook payloads; like every
:class:`~repro.serving.observers.RoundObserver` it is never read back
by a runner, so attaching it cannot change a run's results
(``tests/obs/test_obs_equivalence.py`` asserts bit-identity).
"""

from __future__ import annotations

import math

from repro.analysis.metrics import jain_fairness_index
from repro.errors import ConfigurationError
from repro.serving.observers import RoundObserver


class Counter:
    """A monotonically increasing count (events, streams, rounds)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written value (current round, last pool capacity)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Streaming count/mean/min/max over observed samples.

    Deliberately bucket-free: the windows already give time locality,
    so the registry only needs cheap whole-run moments.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if math.isnan(value):
            return
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": None if self.count == 0 else self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }


class MetricsRegistry:
    """Named instruments, one namespace per kind, create-on-first-use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # get-then-create, not setdefault: these run on every lifecycle
    # hook, and setdefault would allocate a throwaway instrument per
    # call once the name exists
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> dict:
        """Plain-dict view of every instrument (JSON-safe)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {
                n: (None if math.isnan(g.value) else g.value)
                for n, g in sorted(self.gauges.items())
            },
            "histograms": {
                n: h.to_dict() for n, h in sorted(self.histograms.items())
            },
        }


class TelemetryObserver(RoundObserver):
    """Tumbling-window serving metrics over the observer hooks.

    Parameters
    ----------
    window:
        Window length in scheduling rounds.  Window ``k`` covers rounds
        ``[k * window, (k + 1) * window)``; a window closes the moment
        any hook reports a round at or past its end, so ``windows`` is
        always consistent mid-run.
    registry:
        Optional shared :class:`MetricsRegistry` for whole-run totals
        (a fresh one is created otherwise).

    Per closed window (see :meth:`current` for the field list): stream
    decisions (admitted / rejected / preempted / departed), acceptance,
    renegotiation density (steps per round — the scale-up pressure
    signal), mean/min departed quality, per-class Jain fairness over
    departures, mean per-pool headroom and overall utilization (the
    scale-down signal).
    """

    def __init__(self, window: int = 50, registry: MetricsRegistry | None = None):
        if not isinstance(window, int) or isinstance(window, bool) or window < 1:
            raise ConfigurationError(
                f"window must be an integer >= 1, got {window!r}"
            )
        self.window = window
        self.registry = registry if registry is not None else MetricsRegistry()
        self.windows: list[dict] = []
        self._index = 0
        self._acc = self._fresh()
        self._closed = False
        # stream -> class name, learned at admission; renegotiation
        # hooks only carry the stream id, so per-class densities (the
        # SLA-weighted scale trigger) need this whole-run map
        self._class_of: dict[str, str] = {}
        # instruments resolved once: every hook fires per round (or per
        # stream event), so per-hook registry lookups are pure overhead
        reg = self.registry
        self._round_gauge = reg.gauge("round")
        self._c_pool_rounds = reg.counter("pool_rounds")
        self._c_admitted = reg.counter("admitted")
        self._c_rejected = reg.counter("rejected")
        self._c_preempted = reg.counter("preempted")
        self._c_migrations = reg.counter("migrations")
        self._c_renegotiations = reg.counter("renegotiations")
        self._c_reneg_up = reg.counter("renegotiations_up")
        self._c_reneg_down = reg.counter("renegotiations_down")
        self._c_departed = reg.counter("departed")
        self._c_capacity_events = reg.counter("capacity_events")
        self._c_scale_actions = reg.counter("scale_actions")
        self._h_headroom = reg.histogram("headroom")
        self._h_departure_quality = reg.histogram("departure_quality")

    # ------------------------------------------------------------------
    # window bookkeeping
    # ------------------------------------------------------------------

    def _fresh(self) -> dict:
        return {
            # distinct rounds tracked monotonically (hooks arrive in
            # round order; a shard re-reporting the same round must not
            # double-count), cheaper than a per-window set
            "round_count": 0,
            "last_round": -1,
            "pool_rounds": 0,
            "capacity": 0.0,
            "granted": 0.0,
            "headroom": 0.0,
            "peak_streams": 0,
            "admitted": 0,
            "rejected": 0,
            "preempted": 0,
            "departed": 0,
            "renegotiations": 0,
            "renegotiations_up": 0,
            "renegotiations_down": 0,
            "class_renegotiations": {},
            "scale_actions": 0,
            "class_quality": {},
        }

    def _bump(self, round_index: int) -> None:
        """Close every window that ends at or before ``round_index``."""
        self._closed = False
        while round_index >= (self._index + 1) * self.window:
            self.windows.append(self._summarize())
            self._index += 1
            self._acc = self._fresh()
        self._round_gauge.value = round_index

    def _summarize(self) -> dict:
        acc = self._acc
        rounds = acc["round_count"]
        decided = acc["admitted"] + acc["rejected"]
        qualities = [
            q for qs in acc["class_quality"].values() for q in qs
            if not math.isnan(q)
        ]
        class_means = [
            sum(qs) / len(qs)
            for qs in (
                [q for q in qs if not math.isnan(q)]
                for qs in acc["class_quality"].values()
            )
            if qs
        ]
        return {
            "window": self._index,
            "start_round": self._index * self.window,
            "end_round": (self._index + 1) * self.window,
            "rounds": rounds,
            "admitted": acc["admitted"],
            "rejected": acc["rejected"],
            "preempted": acc["preempted"],
            "departed": acc["departed"],
            "renegotiations": acc["renegotiations"],
            "peak_streams": acc["peak_streams"],
            "acceptance": acc["admitted"] / decided if decided else 1.0,
            "renegotiation_density": (
                acc["renegotiations"] / rounds if rounds else 0.0
            ),
            "renegotiations_up": acc["renegotiations_up"],
            "renegotiations_down": acc["renegotiations_down"],
            "renegotiation_density_by_class": {
                name: count / rounds if rounds else 0.0
                for name, count in sorted(acc["class_renegotiations"].items())
            },
            "scale_actions": acc["scale_actions"],
            "mean_quality": (
                sum(qualities) / len(qualities) if qualities else None
            ),
            "min_quality": min(qualities) if qualities else None,
            "fairness_per_class": (
                jain_fairness_index(class_means) if class_means else None
            ),
            "mean_headroom": (
                acc["headroom"] / acc["pool_rounds"]
                if acc["pool_rounds"]
                else None
            ),
            "utilization": (
                acc["granted"] / acc["capacity"] if acc["capacity"] else None
            ),
        }

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self._bump(round_index)
        acc = self._acc
        granted = sum(allocations.values()) if allocations else 0.0
        if round_index != acc["last_round"]:
            acc["last_round"] = round_index
            acc["round_count"] += 1
        acc["pool_rounds"] += 1
        acc["capacity"] += capacity
        acc["granted"] += granted
        acc["headroom"] += capacity - granted
        if len(allocations) > acc["peak_streams"]:
            acc["peak_streams"] = len(allocations)
        self._c_pool_rounds.value += 1
        self._h_headroom.observe(capacity - granted)

    def on_admit(self, spec, round_index, shard_id=None):
        self._bump(round_index)
        self._acc["admitted"] += 1
        self._class_of[spec.name] = (
            spec.service_class if spec.service_class is not None else "unclassed"
        )
        self._c_admitted.value += 1

    def on_reject(self, spec, round_index, shard_id=None):
        self._bump(round_index)
        self._acc["rejected"] += 1
        self._c_rejected.value += 1

    def on_preempt(self, spec, round_index, shard_id=None):
        self._bump(round_index)
        self._acc["preempted"] += 1
        self._c_preempted.value += 1

    def on_migrate(self, move, round_index):
        self._bump(round_index)
        self._c_migrations.value += 1

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        self._bump(round_index)
        acc = self._acc
        acc["renegotiations"] += 1
        # the direction matters to a capacity controller: down-steps are
        # degradation under pressure, up-steps are headroom-driven
        # recovery (PR-4's scale signals)
        direction = "renegotiations_up" if new_target > old_target else (
            "renegotiations_down"
        )
        acc[direction] += 1
        key = self._class_of.get(stream_id, "unclassed")
        acc["class_renegotiations"][key] = (
            acc["class_renegotiations"].get(key, 0) + 1
        )
        self._c_renegotiations.value += 1
        if new_target > old_target:
            self._c_reneg_up.value += 1
        else:
            self._c_reneg_down.value += 1

    def on_depart(self, outcome, round_index, shard_id=None):
        self._bump(round_index)
        acc = self._acc
        acc["departed"] += 1
        key = (
            outcome.spec.service_class
            if outcome.spec.service_class is not None
            else "unclassed"
        )
        quality = outcome.result.mean_quality()
        acc["class_quality"].setdefault(key, []).append(quality)
        self._c_departed.value += 1
        self._h_departure_quality.observe(quality)

    def on_capacity(self, capacity, round_index, shard_id=None):
        self._bump(round_index)
        self._c_capacity_events.value += 1

    def on_scale(self, action, round_index):
        self._bump(round_index)
        self._acc["scale_actions"] += 1
        self._c_scale_actions.value += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def current(self) -> dict:
        """Summary of the in-progress (not yet closed) window."""
        return self._summarize()

    def snapshot(self) -> dict:
        """Everything, JSON-safe: closed windows, the live window, and
        the registry's whole-run totals."""
        return {
            "window_rounds": self.window,
            "windows": list(self.windows),
            "current": self.current(),
            "totals": self.registry.snapshot(),
        }

    def close(self) -> None:
        """Flush the final partial window (:func:`repro.serve` calls
        this when the run completes).  Idempotent."""
        if self._closed:
            return
        acc = self._acc
        if acc["round_count"] or acc["admitted"] or acc["rejected"]:
            final = self._summarize()
            final["end_round"] = (
                acc["last_round"] + 1
                if acc["round_count"]
                else final["end_round"]
            )
            self.windows.append(final)
            self._index += 1
            self._acc = self._fresh()
        self._closed = True
