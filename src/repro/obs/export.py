"""Canonical JSON/JSONL helpers shared by every obs exporter.

Every artifact the observability layer writes — event logs, trace
logs, SLO reports, incidents, telemetry snapshots — goes through the
same two primitives so all of them share one determinism contract:

* :func:`clean_value` — JSON-safe copy (``NaN``/``inf`` become
  ``null``, tuples become lists, recursively);
* :func:`canonical_line` — one mapping as its canonical compact JSON
  line: sorted keys, no whitespace, ``allow_nan=False`` so a stray
  non-finite float is an error instead of silent invalid JSON.

Two identical runs produce byte-identical files regardless of
``PYTHONHASHSEED``; the cross-process determinism suite asserts it.

:func:`export_run` bundles every artifact a
:class:`~repro.serving.result.ServingResult`'s observers collected
into one directory (the CI incident artifacts are written this way).
"""

from __future__ import annotations

import json
import math
from pathlib import Path


def clean_value(value):
    """JSON-safe copy: NaN/inf -> None, tuples -> lists, recursively.

    Float subclasses (``numpy.float64`` quality means reach span
    attributes) collapse to plain ``float`` so equality, ``repr``, and
    the serialized bytes are identical to a loaded round-trip.
    """
    if isinstance(value, float):
        return float(value) if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: clean_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [clean_value(v) for v in value]
    return value


def canonical_line(mapping: dict) -> str:
    """One mapping as its canonical JSON line (no trailing newline)."""
    return json.dumps(
        clean_value(mapping), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def canonical_document(value, indent: int = 2) -> str:
    """A whole document (report files) with the same determinism
    contract as :func:`canonical_line`, but indented for humans."""
    return json.dumps(
        clean_value(value), sort_keys=True, indent=indent, allow_nan=False,
    )


def write_jsonl(path, mappings) -> Path:
    """Write an iterable of mappings as canonical JSONL."""
    path = Path(path)
    path.write_text(
        "".join(canonical_line(m) + "\n" for m in mappings)
    )
    return path


def export_run(result, directory) -> dict:
    """Dump every artifact ``result``'s observers collected.

    Writes (when the matching observer is attached):

    ======================  ==========================================
    ``events.jsonl``        :class:`~repro.obs.events.StructuredEventLog`
    ``trace.jsonl``         :class:`~repro.obs.tracing.TraceObserver`
    ``slo_report.json``     :class:`~repro.obs.slo.SloObserver` reports
    ``incidents.json``      attribution over the two observers above
    ``telemetry.json``      :class:`~repro.obs.metrics.TelemetryObserver`
    ======================  ==========================================

    Returns ``{artifact name: Path}`` for whatever was written.
    """
    from repro.obs.attribution import attribute_incidents
    from repro.obs.events import StructuredEventLog
    from repro.obs.metrics import TelemetryObserver
    from repro.obs.slo import SloObserver
    from repro.obs.tracing import TraceObserver

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    observers = getattr(result, "observers", result)
    first = {}
    for observer in observers:
        for cls in (
            StructuredEventLog, TelemetryObserver, SloObserver, TraceObserver,
        ):
            if isinstance(observer, cls) and cls not in first:
                first[cls] = observer

    written: dict[str, Path] = {}
    log = first.get(StructuredEventLog)
    if log is not None:
        path = directory / "events.jsonl"
        path.write_text(log.to_jsonl())
        written["events"] = path
    tracer = first.get(TraceObserver)
    if tracer is not None:
        path = directory / "trace.jsonl"
        path.write_text(tracer.to_jsonl())
        written["trace"] = path
    slo = first.get(SloObserver)
    if slo is not None:
        path = directory / "slo_report.json"
        path.write_text(canonical_document(
            [report.to_dict() for report in slo.reports()]
        ) + "\n")
        written["slo_report"] = path
    if slo is not None and tracer is not None:
        incidents = attribute_incidents(slo, tracer)
        path = directory / "incidents.json"
        path.write_text(canonical_document(
            [incident.to_dict() for incident in incidents]
        ) + "\n")
        written["incidents"] = path
    telemetry = first.get(TelemetryObserver)
    if telemetry is not None:
        path = directory / "telemetry.json"
        path.write_text(canonical_document(telemetry.snapshot()) + "\n")
        written["telemetry"] = path
    return written
