"""Controller-phase wall-time profiling via the ``on_phase`` hook.

Runners time their control phases — fleet/shard ``admission``,
``arbitration`` and ``step``; cluster-wide ``placement``, ``migration``
and ``balancing`` — **only** when an attached observer overrides
``on_phase`` (``phase_timing_enabled``), so bare runs never pay for a
``perf_counter`` read.  :class:`PerfObserver` is that override: it
accumulates per-phase call counts and wall time, answering "where does
the controller spend its budget" for the paper's claim that fine-grain
control stays cheap relative to the work it schedules.
"""

from __future__ import annotations

from repro.serving.observers import RoundObserver


class PerfObserver(RoundObserver):
    """Accumulates wall time per controller phase.

    Overriding ``on_phase`` is what switches phase timing on in every
    runner; the other hooks stay no-ops, so the only added work per
    round is a handful of ``perf_counter`` reads and dict updates.
    """

    def __init__(self) -> None:
        self.calls: dict[str, int] = {}
        self.seconds: dict[str, float] = {}
        self.max_seconds: dict[str, float] = {}

    def on_phase(self, phase, seconds, round_index, shard_id=None):
        self.calls[phase] = self.calls.get(phase, 0) + 1
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        if seconds > self.max_seconds.get(phase, 0.0):
            self.max_seconds[phase] = seconds

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def breakdown(self) -> dict:
        """Per-phase totals, sorted by share of controller time."""
        total = self.total_seconds
        return {
            phase: {
                "calls": self.calls[phase],
                "seconds": self.seconds[phase],
                "mean_seconds": self.seconds[phase] / self.calls[phase],
                "max_seconds": self.max_seconds[phase],
                "share": self.seconds[phase] / total if total else 0.0,
            }
            for phase in sorted(
                self.seconds, key=lambda p: -self.seconds[p]
            )
        }

    def report(self) -> str:
        """The breakdown as an aligned text table."""
        from repro.analysis.report import _aligned_table

        rows = [
            [
                phase,
                str(stats["calls"]),
                f"{stats['seconds'] * 1e3:.2f}",
                f"{stats['mean_seconds'] * 1e6:.1f}",
                f"{stats['max_seconds'] * 1e6:.1f}",
                f"{stats['share'] * 100.0:.1f}%",
            ]
            for phase, stats in self.breakdown().items()
        ]
        return _aligned_table(
            ["phase", "calls", "total_ms", "mean_us", "max_us", "share"],
            rows,
        )
