"""Incident attribution: when an SLO alert fires, say *why*.

:func:`attribute_incidents` joins the two halves of the tentpole: for
every firing :class:`~repro.obs.events.AlertEvent` an
:class:`~repro.obs.slo.SloObserver` produced, it walks the
:class:`~repro.obs.tracing.TraceObserver`'s causal history backward
over the burn window and assigns each bad budget unit its most
proximate cause, producing one machine-readable :class:`Incident` per
alert (rendered humanly by ``analysis.report.incident_table`` and
``python -m repro serve --incidents``).

Candidate causes, tested in precedence order per bad unit (the first
whose evidence holds wins — a capacity dip explains a renegotiation
cascade, not the other way round):

1. ``capacity-dip`` — an exogenous capacity drop inside the unit's
   lookback window;
2. ``arrival-burst`` — a flash crowd: some round's arrivals reached
   ``burst_factor`` times the run's mean rate (diurnal swings stay
   under it);
3. ``migration-storm`` — at least ``storm_moves`` executed moves in
   the lookback (churn thrashing the placements);
4. ``scale-lag`` — an autoscaler is active and degradation pressure
   built inside the window anyway: capacity arrived late (cooldown /
   sustain lag), or is still pending;
5. ``capacity-shortfall`` — degradation pressure with *flat* capacity
   and no autoscaler reacting: the deployment is simply provisioned
   below the workload;
6. ``renegotiation-cascade`` — sustained down-stepping without any of
   the above: the control loop itself is degrading the class;
7. ``unattributed`` — none of the evidence holds.

Each cause's **share** is its fraction of the budget units burned in
the window — the counterfactual weight "had this not happened, this
much of the burn would not have" under the proximate-cause model.
Everything is a pure function of the two observers' recorded history,
so incidents are deterministic and JSON-round-trippable.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError

CAUSE_KINDS = (
    "capacity-dip",
    "arrival-burst",
    "migration-storm",
    "scale-lag",
    "capacity-shortfall",
    "renegotiation-cascade",
    "unattributed",
)


@dataclass(frozen=True)
class CauseShare:
    """One ranked cause: its burned-budget share and the evidence."""

    kind: str
    share: float
    units: int
    evidence: str

    def __post_init__(self) -> None:
        if self.kind not in CAUSE_KINDS:
            raise ConfigurationError(
                f"unknown cause kind {self.kind!r}; expected one of "
                f"{CAUSE_KINDS}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "share": self.share,
            "units": self.units,
            "evidence": self.evidence,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CauseShare":
        return _from_mapping(cls, data, "cause share")


@dataclass(frozen=True)
class Incident:
    """One alert, attributed: the burn window and its ranked causes."""

    slo: str
    alert_round: int
    window_start: int
    window_end: int
    units: int
    bad_units: int
    burn_multiple: float
    causes: tuple

    @property
    def top_cause(self) -> str | None:
        return self.causes[0].kind if self.causes else None

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "alert_round": self.alert_round,
            "window_start": self.window_start,
            "window_end": self.window_end,
            "units": self.units,
            "bad_units": self.bad_units,
            "burn_multiple": self.burn_multiple,
            "causes": [cause.to_dict() for cause in self.causes],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Incident":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"an incident must be a mapping, got {type(data).__name__}"
            )
        payload = dict(data)
        causes = payload.get("causes")
        if not isinstance(causes, (list, tuple)):
            raise ConfigurationError("incident causes must be a list")
        payload["causes"] = tuple(
            CauseShare.from_dict(cause) for cause in causes
        )
        return _from_mapping(cls, payload, "incident")


def _from_mapping(cls, data, label):
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"a {label} must be a mapping, got {type(data).__name__}"
        )
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    missing = known - set(data)
    if unknown or missing:
        raise ConfigurationError(
            f"{label}: unknown fields {sorted(unknown)}, missing "
            f"fields {sorted(missing)}"
        )
    return cls(**dict(data))


def _classify(
    unit_round: int,
    slo_class: str | None,
    tracer,
    lookback: int,
    burst_factor: float,
    storm_moves: int,
    cascade_steps: int,
) -> tuple[str, str]:
    """One bad unit's proximate cause ``(kind, evidence)``."""
    start = unit_round - lookback + 1
    end = unit_round

    for dip in reversed(tracer.dips):
        if dip["round"] < start:
            break
        if dip["round"] <= end:
            return (
                "capacity-dip",
                f"capacity on {dip['shard']} dropped "
                f"{dip['before']:g} -> {dip['after']:g} at round "
                f"{dip['round']}",
            )

    if tracer.last_round > 0 and tracer.arrivals:
        # windowed, not single-round: with sub-1/round mean rates a
        # lone 3-arrival round trivially beats any factor of the mean,
        # while a real flash crowd sustains the excess across the
        # window (diurnal swings stay under ~1.5x)
        mean_rate = sum(tracer.arrivals.values()) / (tracer.last_round + 1)
        window_sum = sum(
            count
            for r, count in tracer.arrivals.items()
            if start <= r <= end
        )
        expected = mean_rate * (end - start + 1)
        if window_sum >= burst_factor * max(1.0, expected):
            return (
                "arrival-burst",
                f"{window_sum} arrivals in rounds [{start}, {end}] vs "
                f"{expected:.1f} expected at the mean rate",
            )

    moves = sum(1 for r in tracer.migration_rounds if start <= r <= end)
    if moves >= storm_moves:
        return (
            "migration-storm",
            f"{moves} migration moves in rounds [{start}, {end}]",
        )

    down = sum(
        1
        for r, cls in tracer.down_steps
        if start <= r <= end and (slo_class is None or cls == slo_class)
    )
    pressure = down > 0

    if tracer.scale_actions:
        ups = [
            a for a in tracer.scale_actions
            if a["kind"] in ("add", "split") and start <= a["round"] <= end
        ]
        if pressure:
            if ups:
                return (
                    "scale-lag",
                    f"scale-up {ups[-1]['action_id']} landed at round "
                    f"{ups[-1]['round']} but {down} down-step(s) had "
                    f"already burned budget in [{start}, {end}]",
                )
            return (
                "scale-lag",
                f"{down} down-step(s) in [{start}, {end}] with the "
                f"autoscaler in cooldown (no scale-up in the window)",
            )

    flat = not any(
        start <= dip["round"] <= end for dip in tracer.dips
    ) and not any(
        start <= a["round"] <= end for a in tracer.scale_actions
    )
    if pressure and flat:
        return (
            "capacity-shortfall",
            f"{down} down-step(s) in [{start}, {end}] while total "
            f"capacity stayed flat — provisioned below the workload",
        )

    if down >= cascade_steps:
        return (
            "renegotiation-cascade",
            f"{down} down-step(s) in [{start}, {end}] without a "
            f"capacity or arrival trigger",
        )

    return ("unattributed", "no recorded cause in the lookback window")


def attribute_incidents(
    slo_observer,
    trace_observer,
    burst_factor: float = 2.5,
    storm_moves: int = 6,
    cascade_steps: int = 4,
) -> tuple[Incident, ...]:
    """Attribute every firing alert to ranked causes.

    Pure and post-hoc: reads the two observers' recorded history only,
    so calling it any number of times (or never) cannot change a run.
    """
    incidents = []
    for alert in slo_observer.alerts:
        if alert.state != "firing":
            continue
        tracker = slo_observer.trackers[alert.slo]
        spec = tracker.spec
        start = max(0, alert.round - spec.slow_window + 1)
        end = alert.round
        bad = [
            (r, stream) for r, stream in tracker.bad_log if start <= r <= end
        ]
        counts: dict[str, int] = {}
        evidence: dict[str, str] = {}
        for unit_round, _stream in bad:
            kind, why = _classify(
                unit_round, spec.service_class, trace_observer,
                spec.slow_window, burst_factor, storm_moves, cascade_steps,
            )
            counts[kind] = counts.get(kind, 0) + 1
            evidence.setdefault(kind, why)
        total_bad = len(bad)
        causes = tuple(sorted(
            (
                CauseShare(
                    kind=kind,
                    share=count / total_bad,
                    units=count,
                    evidence=evidence[kind],
                )
                for kind, count in counts.items()
            ),
            key=lambda cause: (-cause.share, cause.kind),
        ))
        window_units = sum(
            units
            for r, units, _bad in tracker_window(tracker, start, end)
        )
        budget_rate = 1.0 - spec.target
        burn_multiple = (
            (total_bad / window_units) / budget_rate if window_units else 0.0
        )
        incidents.append(Incident(
            slo=alert.slo,
            alert_round=alert.round,
            window_start=start,
            window_end=end,
            units=window_units,
            bad_units=total_bad,
            burn_multiple=burn_multiple,
            causes=causes,
        ))
    return tuple(incidents)


def tracker_window(tracker, start: int, end: int):
    """The tracker's sealed per-round buckets inside ``[start, end]``.

    The tracker prunes buckets beyond its slow window as it advances,
    but an alert is attributed over exactly that window ending at the
    alert round, so the unit log is the durable source: rebuild the
    per-round unit counts from ``bad_log`` plus the per-round totals
    kept in ``unit_log``.
    """
    counts: dict[int, list[int]] = {}
    for r, _stream, good in tracker.unit_log:
        if start <= r <= end:
            bucket = counts.setdefault(r, [0, 0])
            bucket[0] += 1
            if not good:
                bucket[1] += 1
    return [
        (r, units, bad) for r, (units, bad) in sorted(counts.items())
    ]
