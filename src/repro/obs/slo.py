"""Service-level objectives: rolling error budgets + burn-rate alerts.

The SLA layer (PR 4) sells each class a quality band; this module adds
the *temporal* half of that contract, Kalinahia-style declared QoS: a
:class:`SloSpec` states what fraction of a class's serving decisions
must be good (``"gold quality >= 0.85 in >= 99% of departures"``,
``"acceptance >= 99.9%"``), and :class:`SloObserver` evaluates it live
over the observer hook stream as a **rolling error budget** with
multi-window burn-rate alerting (the SRE fast/slow window pair):

* every matching serving decision is a budget *unit* — an admission
  verdict for ``acceptance`` objectives, a departure for ``quality``
  objectives (good iff the stream's normalized mean quality met the
  bar);
* the error budget accrues at ``1 - target`` per unit and is spent one
  unit per bad decision;
* the **burn rate** over a trailing window is the window's bad
  fraction divided by the budget rate — burn 1.0 spends the budget
  exactly as fast as it accrues, burn 2.0 exhausts a just-accrued
  budget twice over;
* an alert fires when *both* the fast window (paging speed) and the
  slow window (evidence the burn is sustained, not one bad round)
  exceed ``burn_threshold``, exactly once per burn episode: the
  episode must *resolve* (both windows back under threshold) before
  the next alert can fire.

Alerts are deterministic :class:`~repro.obs.events.AlertEvent` records
— appended to the observer's ``alerts`` and, when a sink event log is
wired (``repro.serve`` does this automatically), into the run's JSONL
event stream.  End of run, :meth:`SloObserver.reports` summarizes each
objective as a :class:`SloReport` (budget consumed/remaining,
time-to-first-burn, worst windows), surfaced on
:meth:`ServingResult.slo_reports
<repro.serving.result.ServingResult.slo_reports>`.

Like every observer, attaching :class:`SloObserver` cannot change a
run's results — the equivalence suite asserts bit-identity.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Mapping
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError
from repro.obs.events import AlertEvent
from repro.serving.observers import RoundObserver
from repro.sla.classes import resolve_classes
from repro.video.pipeline import ENCODER_QUALITY_LEVELS

#: Normalization scale: specs/classes state quality in [0, 1], runners
#: report it in encoder-quality units.
QMAX = float(max(ENCODER_QUALITY_LEVELS.levels))

OBJECTIVES = ("quality", "acceptance")


@dataclass(frozen=True)
class SloSpec:
    """One declared objective, JSON-round-trippable.

    Parameters
    ----------
    name:
        Unique label; alerts and reports carry it.
    objective:
        ``"quality"`` — one budget unit per departure of a matching
        stream, good iff its normalized mean quality reached
        ``threshold``; ``"acceptance"`` — one unit per admission
        decision, good iff admitted.
    service_class:
        Restrict to streams of this class (``None`` matches every
        stream, including unclassed ones).
    threshold:
        Normalized [0, 1] quality bar (``"quality"`` objectives only).
        ``None`` defaults to the service class's contractual
        ``target_quality`` — "gold quality" means gold's own target.
    target:
        The good fraction sold, in (0, 1): ``0.99`` leaves a 1% error
        budget.
    fast_window / slow_window:
        Trailing burn windows in scheduling rounds; the fast one pages
        quickly, the slow one confirms the burn is sustained.
    burn_threshold:
        Burn-rate multiple both windows must exceed to fire.
    """

    name: str
    objective: str
    service_class: str | None = None
    threshold: float | None = None
    target: float = 0.99
    fast_window: int = 10
    slow_window: int = 60
    burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"slo name must be a non-empty string, got {self.name!r}"
            )
        if self.objective not in OBJECTIVES:
            raise ConfigurationError(
                f"slo {self.name!r}: objective must be one of "
                f"{OBJECTIVES}, got {self.objective!r}"
            )
        if self.service_class is not None and (
            not isinstance(self.service_class, str) or not self.service_class
        ):
            raise ConfigurationError(
                f"slo {self.name!r}: service_class must be a class name "
                f"or None, got {self.service_class!r}"
            )
        if self.objective == "acceptance" and self.threshold is not None:
            raise ConfigurationError(
                f"slo {self.name!r}: acceptance objectives take no "
                f"quality threshold"
            )
        if self.objective == "quality":
            if self.threshold is None and self.service_class is None:
                raise ConfigurationError(
                    f"slo {self.name!r}: a quality objective needs an "
                    f"explicit threshold or a service_class to default "
                    f"from"
                )
            if self.threshold is not None and not 0.0 < self.threshold <= 1.0:
                raise ConfigurationError(
                    f"slo {self.name!r}: threshold must be in (0, 1], "
                    f"got {self.threshold!r}"
                )
        if not (
            isinstance(self.target, float) and 0.0 < self.target < 1.0
        ):
            raise ConfigurationError(
                f"slo {self.name!r}: target must be a float in (0, 1), "
                f"got {self.target!r}"
            )
        for field_name in ("fast_window", "slow_window"):
            value = getattr(self, field_name)
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 1
            ):
                raise ConfigurationError(
                    f"slo {self.name!r}: {field_name} must be an integer "
                    f">= 1, got {value!r}"
                )
        if self.fast_window >= self.slow_window:
            raise ConfigurationError(
                f"slo {self.name!r}: fast_window ({self.fast_window}) "
                f"must be shorter than slow_window ({self.slow_window})"
            )
        if not self.burn_threshold > 0:
            raise ConfigurationError(
                f"slo {self.name!r}: burn_threshold must be positive, "
                f"got {self.burn_threshold!r}"
            )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "service_class": self.service_class,
            "threshold": self.threshold,
            "target": self.target,
            "fast_window": self.fast_window,
            "slow_window": self.slow_window,
            "burn_threshold": self.burn_threshold,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"an slo must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown slo field(s) {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}"
            )
        for required in ("name", "objective"):
            if required not in data:
                raise ConfigurationError(f"an slo needs a {required!r}")
        return cls(**dict(data))


def resolve_slos(slos) -> tuple[SloSpec, ...]:
    """Normalize an ``slos`` declaration: specs or dicts, unique names."""
    if isinstance(slos, (SloSpec, Mapping)):
        slos = (slos,)
    resolved = []
    seen = set()
    for item in slos:
        if isinstance(item, SloSpec):
            spec = item
        elif isinstance(item, Mapping):
            spec = SloSpec.from_dict(item)
        else:
            raise ConfigurationError(
                f"slos must be SloSpec instances or dicts, got "
                f"{type(item).__name__}"
            )
        if spec.name in seen:
            raise ConfigurationError(f"duplicate slo name {spec.name!r}")
        seen.add(spec.name)
        resolved.append(spec)
    if not resolved:
        raise ConfigurationError("slos must not be empty")
    return tuple(resolved)


@dataclass(frozen=True)
class SloReport:
    """End-of-run verdict for one objective.

    Budget arithmetic is carried in *units* (one unit per serving
    decision) so the ``slo-budget-conservation`` invariant can check
    the books: ``budget_units`` accrues at ``1 - target`` per unit,
    ``consumed_units`` counts bad decisions, ``remaining_units`` is
    maintained incrementally by the tracker — accrued must equal
    consumed plus remaining.  ``budget_remaining`` is the same thing as
    a share of the accrued budget (negative = overspent).
    """

    name: str
    objective: str
    service_class: str | None
    threshold: float | None
    target: float
    units: int
    bad_units: int
    good_fraction: float
    met: bool
    budget_units: float
    consumed_units: float
    remaining_units: float
    budget_remaining: float
    alerts: int
    time_to_first_burn: int | None
    worst_fast_burn: float
    worst_slow_burn: float
    worst_window_round: int | None

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SloReport":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"an slo report must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        missing = known - set(data)
        if unknown or missing:
            raise ConfigurationError(
                f"slo report: unknown fields {sorted(unknown)}, "
                f"missing fields {sorted(missing)}"
            )
        return cls(**dict(data))


class SloTracker:
    """The rolling error budget for one :class:`SloSpec`.

    Pure bookkeeping, usable outside the observer (the
    ``slo-budget-conservation`` invariant runs its own instances):
    :meth:`record` one decision at a round, :meth:`advance_to` the
    first round whose decisions have not all arrived yet — every round
    strictly before it is sealed and evaluated, and the burn-rate
    state machine's firing/resolution transitions come back as
    ``(state, round, fast_burn, slow_burn)`` tuples.
    """

    def __init__(self, spec: SloSpec, threshold: float | None) -> None:
        self.spec = spec
        self.threshold = threshold
        self.units = 0
        self.bad_units = 0
        # two independent ledgers of the same budget: accrued/remaining
        # advance incrementally per unit, so conservation
        # (accrued == consumed + remaining) is a real cross-check, not
        # an identity
        self.budget_units = 0.0
        self.remaining_units = 0.0
        self.alert_active = False
        self.alert_count = 0
        self.first_bad_round: int | None = None
        self.worst_fast_burn = 0.0
        self.worst_slow_burn = 0.0
        self.worst_window_round: int | None = None
        #: (round, stream) per bad unit — attribution's work list.
        self.bad_log: list[tuple[int, str]] = []
        #: (round, stream, good) per unit — durable window evidence
        #: (the rolling buckets prune themselves as the run advances).
        self.unit_log: list[tuple[int, str, bool]] = []
        self._buckets: deque = deque()  # sealed (round, units, bad)
        self._slow_units = 0
        self._slow_bad = 0
        self._cur_round: int | None = None
        self._cur_units = 0
        self._cur_bad = 0
        self._evaluated = -1

    # ------------------------------------------------------------------

    def record(self, round_index: int, stream: str, good: bool) -> None:
        if self._cur_round is None:
            self._cur_round = round_index
        self.units += 1
        rate = 1.0 - self.spec.target
        self.budget_units += rate
        self.remaining_units += rate
        self.unit_log.append((round_index, stream, good))
        if not good:
            self.bad_units += 1
            self.remaining_units -= 1.0
            self.bad_log.append((round_index, stream))
            if self.first_bad_round is None:
                self.first_bad_round = round_index
        self._cur_units += 1
        self._cur_bad += 0 if good else 1

    def advance_to(self, round_index: int) -> list[tuple]:
        """Seal and evaluate every round strictly before ``round_index``."""
        transitions: list[tuple] = []
        while self._evaluated + 1 < round_index:
            r = self._evaluated + 1
            if self._cur_round is not None and self._cur_round == r:
                self._buckets.append((r, self._cur_units, self._cur_bad))
                self._slow_units += self._cur_units
                self._slow_bad += self._cur_bad
                self._cur_round = None
                self._cur_units = 0
                self._cur_bad = 0
            transition = self._evaluate(r)
            if transition is not None:
                transitions.append(transition)
            self._evaluated = r
        return transitions

    def finish(self) -> list[tuple]:
        """Seal the final round (run over, no more decisions coming)."""
        last = self._evaluated
        if self._cur_round is not None:
            last = max(last, self._cur_round)
        return self.advance_to(last + 1)

    # ------------------------------------------------------------------

    def _evaluate(self, r: int) -> tuple | None:
        spec = self.spec
        while self._buckets and self._buckets[0][0] <= r - spec.slow_window:
            _, units, bad = self._buckets.popleft()
            self._slow_units -= units
            self._slow_bad -= bad
        fast_units = fast_bad = 0
        for round_index, units, bad in reversed(self._buckets):
            if round_index <= r - spec.fast_window:
                break
            fast_units += units
            fast_bad += bad
        rate = 1.0 - spec.target
        fast_burn = (fast_bad / fast_units) / rate if fast_units else 0.0
        slow_burn = (
            (self._slow_bad / self._slow_units) / rate
            if self._slow_units else 0.0
        )
        self._fast_burn = fast_burn
        self._slow_burn = slow_burn
        if slow_burn > self.worst_slow_burn:
            self.worst_slow_burn = slow_burn
            self.worst_window_round = r
        self.worst_fast_burn = max(self.worst_fast_burn, fast_burn)
        firing = (
            fast_burn >= spec.burn_threshold
            and slow_burn >= spec.burn_threshold
        )
        if firing and not self.alert_active:
            self.alert_active = True
            self.alert_count += 1
            return ("firing", r, fast_burn, slow_burn)
        if not firing and self.alert_active:
            self.alert_active = False
            return ("resolved", r, fast_burn, slow_burn)
        return None

    # ------------------------------------------------------------------

    def remaining_share(self) -> float:
        if self.budget_units <= 0.0:
            return 1.0
        return self.remaining_units / self.budget_units

    def status(self) -> dict:
        """Live view (through the last sealed round) for ``--watch``."""
        return {
            "budget_remaining": round(self.remaining_share(), 6),
            "alert": self.alert_active,
            "fast_burn": round(getattr(self, "_fast_burn", 0.0), 6),
            "slow_burn": round(getattr(self, "_slow_burn", 0.0), 6),
        }

    def report(self) -> SloReport:
        spec = self.spec
        good_fraction = (
            (self.units - self.bad_units) / self.units if self.units else 1.0
        )
        return SloReport(
            name=spec.name,
            objective=spec.objective,
            service_class=spec.service_class,
            threshold=self.threshold,
            target=spec.target,
            units=self.units,
            bad_units=self.bad_units,
            good_fraction=good_fraction,
            met=good_fraction >= spec.target,
            budget_units=self.budget_units,
            consumed_units=float(self.bad_units),
            remaining_units=self.remaining_units,
            budget_remaining=self.remaining_share(),
            alerts=self.alert_count,
            time_to_first_burn=self.first_bad_round,
            worst_fast_burn=self.worst_fast_burn,
            worst_slow_burn=self.worst_slow_burn,
            worst_window_round=self.worst_window_round,
        )


class SloObserver(RoundObserver):
    """Evaluates a set of :class:`SloSpec` objectives over a run.

    Parameters
    ----------
    slos:
        :class:`SloSpec` instances or dicts (``resolve_slos``); a
        spec's ``ServingSpec.slos`` builds one of these automatically.
    classes:
        SLA catalog for defaulting quality thresholds from a class's
        ``target_quality`` (the spec's ``service_classes`` is forwarded
        automatically — the factory is registered ``sla_aware``).
    sink:
        Optional :class:`~repro.obs.events.StructuredEventLog`; every
        :class:`~repro.obs.events.AlertEvent` is also recorded there,
        interleaved at its deterministic position in the run's event
        stream.  ``repro.serve`` wires the run's first event log in
        automatically when none is set.
    """

    def __init__(self, slos, classes=None, sink=None) -> None:
        specs = resolve_slos(slos)
        catalog = resolve_classes(classes)
        self.slos = specs
        self.sink = sink
        self.alerts: list[AlertEvent] = []
        self.trackers: dict[str, SloTracker] = {}
        for spec in specs:
            threshold = spec.threshold
            if spec.objective == "quality" and threshold is None:
                cls = catalog.get(spec.service_class)
                if cls is None:
                    raise ConfigurationError(
                        f"slo {spec.name!r}: service_class "
                        f"{spec.service_class!r} is not in the class "
                        f"catalog, so its quality threshold cannot "
                        f"default from target_quality"
                    )
                threshold = cls.target_quality
            self.trackers[spec.name] = SloTracker(spec, threshold)
        self._last_round = 0
        self._closed = False
        self._reports: tuple[SloReport, ...] | None = None

    # ------------------------------------------------------------------
    # clock + unit recording
    # ------------------------------------------------------------------

    def _advance(self, round_index: int) -> None:
        if round_index > self._last_round:
            self._last_round = round_index
        for tracker in self.trackers.values():
            for state, r, fast, slow in tracker.advance_to(round_index):
                self._alert(tracker, state, r, fast, slow)

    def _alert(self, tracker, state, r, fast, slow) -> None:
        event = AlertEvent(
            round=r, shard=None, slo=tracker.spec.name, state=state,
            fast_burn=fast, slow_burn=slow,
            budget_remaining=tracker.remaining_share(),
        )
        self.alerts.append(event)
        if self.sink is not None:
            self.sink.record(event)

    def _matching(self, objective, service_class):
        for tracker in self.trackers.values():
            spec = tracker.spec
            if spec.objective != objective:
                continue
            if (
                spec.service_class is not None
                and spec.service_class != service_class
            ):
                continue
            yield tracker

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self._advance(round_index)

    def on_capacity(self, capacity, round_index, shard_id=None):
        self._advance(round_index)

    def on_admit(self, spec, round_index, shard_id=None):
        self._advance(round_index)
        for tracker in self._matching("acceptance", spec.service_class):
            tracker.record(round_index, spec.name, good=True)

    def on_reject(self, spec, round_index, shard_id=None):
        self._advance(round_index)
        for tracker in self._matching("acceptance", spec.service_class):
            tracker.record(round_index, spec.name, good=False)

    def on_depart(self, outcome, round_index, shard_id=None):
        self._advance(round_index)
        spec = outcome.spec
        trackers = list(self._matching("quality", spec.service_class))
        if not trackers:
            return
        mean = outcome.result.mean_quality()
        norm = mean / QMAX
        for tracker in trackers:
            # an all-skips departure has undefined (NaN) quality: that
            # is a failed delivery, not a free pass
            good = (not math.isnan(mean)) and norm >= tracker.threshold - 1e-12
            tracker.record(round_index, spec.name, good=good)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def status(self) -> dict:
        """Per-objective live state, keyed by slo name (``--watch``)."""
        return {
            name: tracker.status()
            for name, tracker in self.trackers.items()
        }

    def reports(self) -> tuple[SloReport, ...]:
        """End-of-run verdicts (closes the observer if still open)."""
        self.close()
        return self._reports

    def close(self) -> None:
        """Seal the final round and fix the reports.  Idempotent
        (:func:`repro.serve` calls it when the run completes)."""
        if self._closed:
            return
        self._closed = True
        for tracker in self.trackers.values():
            for state, r, fast, slow in tracker.finish():
                self._alert(tracker, state, r, fast, slow)
        self._reports = tuple(
            tracker.report() for tracker in self.trackers.values()
        )
