"""The runtime invariant ledger: named, machine-checked serving laws.

Every guarantee the serving stack's tests assert post-hoc becomes a
named :class:`Invariant` checked **live** against the observer hook
stream, so any run — including future engine refactors — can execute
under a safety harness:

* ``grant-conservation`` — on every busy round the arbiter's grants
  are non-negative and sum exactly to the arbitrated pool;
* ``class-floors`` — renegotiated quality targets never step below the
  stream's declared class floor (nor outside [0, 1], nor to a no-op);
* ``exactly-once-rejection`` — every offered stream is decided exactly
  once: admitted xor rejected, each departure matches one admission,
  and every preemption is accounted as exactly one rejection;
* ``migration-headroom`` — a migration's implicit feasibility claim
  holds: after any move the destination's committed qmin demand still
  fits its nominal capacity, moves reference streams actually resident
  on the source, and departures happen from the pool the ledger
  believes the stream lives on;
* ``scale-conservation`` — autoscaling changes total capacity only by
  explicit, declared provisioning: splits and merges conserve exactly,
  created and retired shards declare their capacities before the next
  round;
* ``pacing-degrade`` / ``pacing-scale-cooldown`` — the graceful-pacing
  contracts: renegotiation steps stay bounded and never flutter, scale
  actions stay spaced and never add capacity into a still-settling dip.

:class:`InvariantObserver` runs a set of invariants over a run and
either records violations (``enforce=False``, the ledger mode) or
raises :class:`InvariantViolationError` at the first one
(``enforce=True``, the CI harness mode).  Third-party invariants
register into :data:`INVARIANTS` via :func:`register_invariant`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.serving.observers import RoundObserver
from repro.serving.registry import PolicyRegistry
from repro.sla.classes import resolve_classes
from repro.streams.admission import qmin_demand


@dataclass(frozen=True)
class Violation:
    """One broken invariant occurrence, machine-readable."""

    invariant: str
    detail: str
    round_index: int | None = None
    shard_id: str | None = None
    stream_id: str | None = None

    def __str__(self) -> str:
        where = f"round {self.round_index}"
        if self.shard_id is not None:
            where += f", {self.shard_id}"
        if self.stream_id is not None:
            where += f", stream {self.stream_id!r}"
        return f"[{self.invariant}] {self.detail} ({where})"


class InvariantViolationError(AssertionError):
    """Raised in enforcement mode; carries the first violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(str(violation))
        self.violation = violation


class Invariant(RoundObserver):
    """One named serving law, checked against the hook stream.

    Subclasses override the lifecycle hooks they need and call
    :meth:`violation` when the law breaks; ``finalize`` runs once at
    the end of a completed run for whole-run accounting.  Instances are
    single-run: the owning :class:`InvariantObserver` builds fresh ones.
    """

    name = "invariant"
    description = ""

    def __init__(self) -> None:
        self._emit = None
        #: SLA catalog injected by the owning observer (class floors).
        self.classes = None
        #: declared SLOs injected by the owning observer (budget laws);
        #: ``None`` leaves SLO-dependent invariants inert.
        self.slos = None

    def bind(self, emit) -> None:
        self._emit = emit

    def violation(
        self, detail, round_index=None, shard_id=None, stream_id=None
    ) -> None:
        self._emit(Violation(
            invariant=self.name, detail=detail, round_index=round_index,
            shard_id=shard_id, stream_id=stream_id,
        ))

    def is_active(self) -> bool:
        """Whether the law has anything to check on this run (called
        after the owning observer injects ``classes``/``slos``; an
        inactive law is skipped by hook dispatch but still listed in
        the ledger)."""
        return True

    def finalize(self) -> None:
        """End-of-run accounting (run by ``InvariantObserver.close``)."""


class GrantConservation(Invariant):
    """Grants are non-negative and sum exactly to the arbitrated pool.

    The universal arbiter contract (every built-in satisfies it by
    construction): on a busy round no capacity is invented and none is
    silently dropped.  Tolerance is relative — pools are ~1e7 cycles.
    """

    name = "grant-conservation"
    description = "busy-round grants are >= 0 and sum to the pool"
    rel_tol = 1e-6

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        if not allocations:
            return
        total = 0.0
        for stream_id, grant in allocations.items():
            total += grant
            if grant < -self.rel_tol * capacity:
                self.violation(
                    f"negative grant {grant!r}",
                    round_index=round_index, shard_id=shard_id,
                    stream_id=stream_id,
                )
        if not math.isclose(total, capacity, rel_tol=self.rel_tol):
            self.violation(
                f"grants sum to {total!r}, pool is {capacity!r}",
                round_index=round_index, shard_id=shard_id,
            )


class ClassFloors(Invariant):
    """Renegotiated targets respect the stream's class floor and [0, 1].

    Also rejects no-op steps (``new == old``): renegotiation events
    must mean something, or density metrics lie.
    """

    name = "class-floors"
    description = "renegotiated targets stay within [class floor, 1]"
    abs_tol = 1e-9

    def __init__(self) -> None:
        super().__init__()
        self._floor_of: dict[str, float] = {}
        self._catalog = None

    def on_admit(self, spec, round_index, shard_id=None):
        if spec.service_class is None:
            return
        if self._catalog is None:
            self._catalog = resolve_classes(self.classes)
        cls = self._catalog.get(spec.service_class)
        # unknown classes are the runner's ConfigurationError, not ours
        if cls is not None:
            self._floor_of[spec.name] = cls.min_quality

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        if new_target == old_target:
            self.violation(
                f"no-op renegotiation at target {new_target!r}",
                round_index=round_index, shard_id=shard_id,
                stream_id=stream_id,
            )
        if not 0.0 <= new_target <= 1.0:
            self.violation(
                f"target {new_target!r} outside [0, 1]",
                round_index=round_index, shard_id=shard_id,
                stream_id=stream_id,
            )
        floor = self._floor_of.get(stream_id)
        if floor is not None and new_target < floor - self.abs_tol:
            self.violation(
                f"target {new_target!r} below class floor {floor!r}",
                round_index=round_index, shard_id=shard_id,
                stream_id=stream_id,
            )


class ExactlyOnceRejection(Invariant):
    """Every stream is decided once; preemptions count as rejections.

    The accounting law behind acceptance ratios: a stream is admitted
    xor rejected (never both, never twice), departures pair 1:1 with
    admissions, and every preemption is followed by exactly one
    rejection of the same stream — the "counted once" guarantee the
    SLA layer's totals rely on.
    """

    name = "exactly-once-rejection"
    description = "admit/reject/preempt/depart accounting is exactly-once"

    def __init__(self) -> None:
        super().__init__()
        self._admitted: set[str] = set()
        self._rejected: set[str] = set()
        self._departed: set[str] = set()
        self._preempted: set[str] = set()

    def on_admit(self, spec, round_index, shard_id=None):
        if spec.name in self._admitted:
            self.violation(
                "admitted twice", round_index=round_index,
                shard_id=shard_id, stream_id=spec.name,
            )
        if spec.name in self._rejected:
            self.violation(
                "admitted after rejection", round_index=round_index,
                shard_id=shard_id, stream_id=spec.name,
            )
        self._admitted.add(spec.name)

    def on_reject(self, spec, round_index, shard_id=None):
        if spec.name in self._rejected:
            self.violation(
                "rejected twice", round_index=round_index,
                shard_id=shard_id, stream_id=spec.name,
            )
        if spec.name in self._admitted:
            self.violation(
                "rejected after admission", round_index=round_index,
                shard_id=shard_id, stream_id=spec.name,
            )
        self._rejected.add(spec.name)

    def on_preempt(self, spec, round_index, shard_id=None):
        if spec.name in self._admitted:
            self.violation(
                "preempted while active (only queued specs may be "
                "preempted)", round_index=round_index,
                shard_id=shard_id, stream_id=spec.name,
            )
        self._preempted.add(spec.name)

    def on_depart(self, outcome, round_index, shard_id=None):
        name = outcome.spec.name
        if name in self._departed:
            self.violation(
                "departed twice", round_index=round_index,
                shard_id=shard_id, stream_id=name,
            )
        if name not in self._admitted:
            self.violation(
                "departed without admission", round_index=round_index,
                shard_id=shard_id, stream_id=name,
            )
        self._departed.add(name)

    def finalize(self) -> None:
        for name in sorted(self._preempted - self._rejected):
            self.violation(
                "preempted but never counted as rejected", stream_id=name
            )
        for name in sorted(self._admitted - self._departed):
            self.violation(
                "admitted but never departed (run ended with the "
                "stream still active)", stream_id=name,
            )


class MigrationHeadroom(Invariant):
    """Migrations keep their feasibility claims and residency honest.

    Tracks each stream's resident pool and every pool's committed qmin
    demand (mode ``"average"`` — a lower bound on what any admission
    gate actually committed, so the check never false-positives).  A
    capacity drop may legitimately leave a pool overcommitted, so the
    fit check runs only when a *move* makes a fresh headroom claim.
    """

    name = "migration-headroom"
    description = "post-move committed qmin demand fits the dest's capacity"
    rel_tol = 1e-9
    mode = "average"

    def __init__(self) -> None:
        super().__init__()
        self._capacity: dict = {}
        self._committed: dict = {}
        self._resident: dict[str, tuple] = {}

    def on_capacity(self, capacity, round_index, shard_id=None):
        self._capacity[shard_id] = capacity

    def on_admit(self, spec, round_index, shard_id=None):
        self._resident[spec.name] = (shard_id, spec.config)
        self._committed[shard_id] = (
            self._committed.get(shard_id, 0.0)
            + qmin_demand(spec.config, self.mode)
        )

    def on_depart(self, outcome, round_index, shard_id=None):
        name = outcome.spec.name
        resident = self._resident.pop(name, None)
        if resident is None:
            return  # exactly-once-rejection owns that complaint
        home, config = resident
        if home != shard_id:
            self.violation(
                f"departed from {shard_id!r} but resident on {home!r}",
                round_index=round_index, shard_id=shard_id, stream_id=name,
            )
            home = shard_id
        self._committed[home] = (
            self._committed.get(home, 0.0) - qmin_demand(config, self.mode)
        )

    def on_migrate(self, move, round_index):
        if move.source == move.dest:
            self.violation(
                "move with identical source and destination",
                round_index=round_index, shard_id=move.source,
                stream_id=move.stream_id,
            )
            return
        if move.kind == "active":
            resident = self._resident.get(move.stream_id)
            if resident is None or resident[0] != move.source:
                home = resident[0] if resident else None
                self.violation(
                    f"active move from {move.source!r} but the stream "
                    f"is resident on {home!r}",
                    round_index=round_index, shard_id=move.source,
                    stream_id=move.stream_id,
                )
                return
            _, config = resident
            demand = qmin_demand(config, self.mode)
            self._committed[move.source] = (
                self._committed.get(move.source, 0.0) - demand
            )
            self._committed[move.dest] = (
                self._committed.get(move.dest, 0.0) + demand
            )
            self._resident[move.stream_id] = (move.dest, config)
        self._check_fit(move, round_index)

    def _check_fit(self, move, round_index) -> None:
        capacity = self._capacity.get(move.dest)
        if capacity is None:
            return  # no on_capacity seen (hand-wired run): nothing to claim
        committed = self._committed.get(move.dest, 0.0)
        if committed > capacity * (1.0 + self.rel_tol):
            self.violation(
                f"committed qmin demand {committed!r} exceeds "
                f"destination capacity {capacity!r} after {move.kind} move",
                round_index=round_index, shard_id=move.dest,
                stream_id=move.stream_id,
            )


class ScaleConservation(Invariant):
    """Total capacity changes only by explicit, declared provisioning.

    The autoscaler contract (PR-9): every :class:`ScaleAction
    <repro.horizon.autoscaler.ScaleAction>` the runner applies must

    * reference shards the ledger knows (by their last ``on_capacity``
      declaration);
    * conserve capacity *exactly* for ``split`` (the parts sum to the
      source) and ``merge`` (the merged shard gets the sources' sum);
    * pre-announce every shard it creates (``action.created``) and
      retires, and follow up with matching ``on_capacity`` declarations
      — created shards at their exact capacity, retired shards at zero
      — before the next round or scale action.

    Anything else — a shard resized without a declaration, a split that
    leaks cycles, a created shard that never shows up — is a silent
    capacity change, exactly what this law forbids.
    """

    name = "scale-conservation"
    description = "scale actions conserve declared capacity exactly"
    rel_tol = 1e-9
    abs_tol = 1e-6

    def __init__(self) -> None:
        super().__init__()
        self._capacity: dict = {}
        #: shard -> capacity it must declare (0.0 = retirement pending)
        self._pending: dict = {}

    def _drain_pending(self, round_index) -> None:
        for shard_id, expected in sorted(self._pending.items()):
            self.violation(
                f"scale action promised a capacity declaration of "
                f"{expected!r} that never arrived",
                round_index=round_index, shard_id=shard_id,
            )
        self._pending.clear()

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        if self._pending:
            self._drain_pending(round_index)

    def on_scale(self, action, round_index):
        if self._pending:
            self._drain_pending(round_index)
        for shard_id in action.shards:
            if shard_id not in self._capacity:
                self.violation(
                    f"{action.kind} references unknown shard",
                    round_index=round_index, shard_id=shard_id,
                )
                return
        if action.kind == "split":
            source = self._capacity[action.shards[0]]
            if not math.isclose(
                sum(action.capacities), source,
                rel_tol=self.rel_tol, abs_tol=self.abs_tol,
            ):
                self.violation(
                    f"split parts sum to {sum(action.capacities)!r}, "
                    f"source capacity is {source!r}",
                    round_index=round_index, shard_id=action.shards[0],
                )
        merged = sum(self._capacity[s] for s in action.shards)
        if action.kind == "merge" and action.capacities:
            if not math.isclose(
                action.capacities[0], merged,
                rel_tol=self.rel_tol, abs_tol=self.abs_tol,
            ):
                self.violation(
                    f"merge declares {action.capacities[0]!r}, sources "
                    f"sum to {merged!r}",
                    round_index=round_index, shard_id=action.shards[0],
                )
        expected_created = {
            "add": list(action.capacities),
            "split": list(action.capacities),
            "merge": [merged],
            "remove": [],
        }[action.kind]
        if len(action.created) != len(expected_created):
            self.violation(
                f"{action.kind} creates {len(expected_created)} "
                f"shard(s) but announced {len(action.created)}",
                round_index=round_index,
            )
            return
        for shard_id, capacity in zip(action.created, expected_created):
            self._pending[shard_id] = capacity
        if action.kind in ("remove", "split", "merge"):
            for shard_id in action.shards:
                self._pending[shard_id] = 0.0

    def on_capacity(self, capacity, round_index, shard_id=None):
        if shard_id in self._pending:
            expected = self._pending.pop(shard_id)
            if not math.isclose(
                capacity, expected,
                rel_tol=self.rel_tol, abs_tol=self.abs_tol,
            ):
                self.violation(
                    f"declared capacity {capacity!r}, scale action "
                    f"promised {expected!r}",
                    round_index=round_index, shard_id=shard_id,
                )
            if expected == 0.0:
                self._capacity.pop(shard_id, None)
                return
        self._capacity[shard_id] = capacity

    def finalize(self) -> None:
        self._drain_pending(None)


class PacingDegrade(Invariant):
    """Quality renegotiation is paced: bounded steps, no oscillation.

    The degrade-then-recover contract: a single renegotiation never
    moves a stream's target by more than ``max_step`` (no cliff-edge
    drops, no catch-up bursts restoring everything at once), and a
    stream never reverses direction *twice in a row* within ``min_gap``
    rounds of the preceding step.  One quick reversal is a legitimate
    correction — an up-step that overshoots gets walked back the next
    congested round — but a second quick flip means the controller is
    chasing noise, not load (with the built-in step policy this only
    happens when both ``patience`` and ``recovery_patience`` sit below
    the gap, the flutter-prone configuration this law exists to catch).
    """

    name = "pacing-degrade"
    description = "renegotiation steps are bounded and never flutter"
    max_step = 0.35
    min_gap = 2

    def __init__(self) -> None:
        super().__init__()
        #: stream -> (last step round, direction, last flip was quick)
        self._last: dict[str, tuple[int, int, bool]] = {}

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        step = new_target - old_target
        if abs(step) > self.max_step + 1e-9:
            self.violation(
                f"step {step:+.3f} exceeds the pacing bound "
                f"{self.max_step}",
                round_index=round_index, shard_id=shard_id,
                stream_id=stream_id,
            )
        direction = 1 if step > 0 else -1
        last = self._last.get(stream_id)
        quick_flip = (
            last is not None
            and last[1] != direction
            and round_index - last[0] < self.min_gap
        )
        if quick_flip and last[2]:
            self.violation(
                f"second direction flip in a row within {self.min_gap} "
                f"round(s) ({last[1]:+d} -> {direction:+d} after "
                f"{round_index - last[0]} round(s)) — the target is "
                "oscillating, not degrading gracefully",
                round_index=round_index, shard_id=shard_id,
                stream_id=stream_id,
            )
        self._last[stream_id] = (round_index, direction, quick_flip)


class PacingScaleCooldown(Invariant):
    """Scale actions are paced: spaced out, and never scale-up into a
    still-settling capacity dip.

    Two laws: consecutive scale actions sit at least
    ``min_action_gap`` rounds apart (an autoscaler reacting faster
    than sessions can renegotiate is thrashing), and no capacity is
    *added* (``add`` / ``split``) within ``dip_settle`` rounds of a
    capacity dip — after an outage the fleet must degrade gracefully
    and recover, not mask the dip with an immediate catch-up burst of
    provisioning the next window would tear back down.
    """

    name = "pacing-scale-cooldown"
    description = "scale actions are spaced; no scale-up into a fresh dip"
    min_action_gap = 8
    dip_settle = 8

    def __init__(self) -> None:
        super().__init__()
        self._capacity: dict = {}
        self._scaling: set = set()
        self._last_action: int | None = None
        self._last_dip: int | None = None

    def on_scale(self, action, round_index):
        if (
            self._last_action is not None
            and round_index - self._last_action < self.min_action_gap
        ):
            self.violation(
                f"scale action only {round_index - self._last_action} "
                f"round(s) after the previous one (min gap "
                f"{self.min_action_gap})",
                round_index=round_index,
            )
        if (
            action.kind in ("add", "split")
            and self._last_dip is not None
            and round_index - self._last_dip < self.dip_settle
        ):
            self.violation(
                f"{action.kind} within {round_index - self._last_dip} "
                f"round(s) of a capacity dip (settle window "
                f"{self.dip_settle})",
                round_index=round_index,
            )
        self._last_action = round_index
        # declarations triggered by this action are provisioning, not
        # dips — remember who is about to re-declare
        self._scaling.update(action.shards)
        self._scaling.update(action.created)

    def on_capacity(self, capacity, round_index, shard_id=None):
        previous = self._capacity.get(shard_id)
        if shard_id in self._scaling:
            self._scaling.discard(shard_id)
        elif previous is not None and 0.0 < capacity < previous:
            self._last_dip = round_index
        if capacity <= 0.0:
            self._capacity.pop(shard_id, None)
        else:
            self._capacity[shard_id] = capacity


class SloBudgetConservation(Invariant):
    """The SLO engine's books balance, and alerts never double-fire.

    Runs its own :class:`~repro.obs.slo.SloTracker` per declared
    objective (``slos`` is injected by the owning observer; without a
    declaration the law is inert) and checks two accounts every round:

    * **conservation** — the budget accrued incrementally (one
      ``1 - target`` credit per unit) equals consumed (the bad-unit
      count) plus remaining (maintained by a separate incremental
      ledger), and equals the closed form ``units * (1 - target)`` —
      drift or double-counting on any path breaks the equation;
    * **episode discipline** — burn-rate transitions strictly
      alternate: an alert fires exactly once per burn episode, and a
      resolution only follows a firing.
    """

    name = "slo-budget-conservation"
    description = "budget accrued == consumed + remaining; one alert per episode"
    rel_tol = 1e-9
    abs_tol = 1e-6

    def __init__(self) -> None:
        super().__init__()
        self._trackers = None
        self._last_state: dict[str, str | None] = {}
        self._seen_alerts = 0

    def is_active(self) -> bool:
        return self.slos is not None

    def _ensure(self):
        if self._trackers is None:
            # deferred: repro.obs.slo imports nothing from this module,
            # but building at first hook lets the owning observer
            # inject ``slos``/``classes`` after construction
            from repro.obs.slo import SloObserver

            if self.slos is None:
                self._trackers = {}
            else:
                mirror = SloObserver(self.slos, classes=self.classes)
                self._trackers = mirror.trackers
                self._mirror = mirror
        return self._trackers

    def _advance(self, round_index) -> None:
        if self._ensure():
            self._mirror._advance(round_index)
            self._drain(round_index)

    def _drain(self, round_index) -> None:
        # every tracker advance flows through the mirror observer, so
        # its alert stream is the single complete transition record —
        # the mirror's own hooks advance trackers internally, and
        # transitions consumed there would be invisible to a direct
        # ``advance_to`` call here
        alerts = self._mirror.alerts
        while self._seen_alerts < len(alerts):
            event = alerts[self._seen_alerts]
            self._seen_alerts += 1
            name, state = event.slo, event.state
            last = self._last_state.get(name)
            if state == "firing" and last == "firing":
                self.violation(
                    f"slo {name!r}: alert fired twice without a "
                    f"resolution between (burn episodes fire exactly "
                    f"once)", round_index=event.round,
                )
            if state == "resolved" and last != "firing":
                self.violation(
                    f"slo {name!r}: resolution without a preceding "
                    f"alert", round_index=event.round,
                )
            self._last_state[name] = state
        for name in self._trackers:
            self._conserved(name, round_index)

    def _conserved(self, name, round_index) -> None:
        tracker = self._trackers[name]
        accrued = tracker.budget_units
        consumed = float(tracker.bad_units)
        remaining = tracker.remaining_units
        closed_form = tracker.units * (1.0 - tracker.spec.target)
        tol = self.abs_tol + self.rel_tol * max(1.0, abs(accrued))
        if abs(accrued - (consumed + remaining)) > tol:
            self.violation(
                f"slo {name!r}: budget accrued {accrued!r} != consumed "
                f"{consumed!r} + remaining {remaining!r}",
                round_index=round_index,
            )
        if abs(accrued - closed_form) > tol:
            self.violation(
                f"slo {name!r}: budget accrued {accrued!r} drifted from "
                f"{tracker.units} units * (1 - {tracker.spec.target}) "
                f"= {closed_form!r}", round_index=round_index,
            )

    # mirror the SLO observer's unit recording exactly
    def on_round(self, round_index, allocations, capacity, shard_id=None):
        self._advance(round_index)

    def on_capacity(self, capacity, round_index, shard_id=None):
        self._advance(round_index)

    def on_admit(self, spec, round_index, shard_id=None):
        if self._ensure():
            self._mirror.on_admit(spec, round_index, shard_id)
            self._drain(round_index)

    def on_reject(self, spec, round_index, shard_id=None):
        if self._ensure():
            self._mirror.on_reject(spec, round_index, shard_id)
            self._drain(round_index)

    def on_depart(self, outcome, round_index, shard_id=None):
        if self._ensure():
            self._mirror.on_depart(outcome, round_index, shard_id)
            self._drain(round_index)

    def finalize(self) -> None:
        if self._ensure():
            self._mirror.close()
            self._drain(None)


#: Named invariants, the ledger's registry (a standard policy family).
INVARIANTS = PolicyRegistry("invariant")


def register_invariant(name, factory=None, *, overwrite=False, **meta):
    """Register an :class:`Invariant` factory under ``name``."""
    return INVARIANTS.register(name, factory, overwrite=overwrite, **meta)


register_invariant("grant-conservation", GrantConservation)
register_invariant("class-floors", ClassFloors)
register_invariant("exactly-once-rejection", ExactlyOnceRejection)
register_invariant("migration-headroom", MigrationHeadroom)
register_invariant("scale-conservation", ScaleConservation)
register_invariant("pacing-degrade", PacingDegrade)
register_invariant("pacing-scale-cooldown", PacingScaleCooldown)
register_invariant("slo-budget-conservation", SloBudgetConservation)


class InvariantObserver(RoundObserver):
    """Runs a set of invariants live over a serving run.

    Parameters
    ----------
    invariants:
        Which laws to check: registered names, :class:`Invariant`
        classes, or instances.  ``None`` runs every registered one.
    enforce:
        ``False`` (ledger mode) records every violation in
        ``self.violations``; ``True`` (harness mode) raises
        :class:`InvariantViolationError` at the first.
    classes:
        SLA catalog for floor checks; a spec's ``service_classes`` is
        forwarded here automatically (the factory is registered
        ``sla_aware``).
    slos:
        Declared SLOs for the budget-conservation law; a spec's
        ``slos`` is forwarded here automatically (the factory is
        registered ``slo_aware``).  ``None`` leaves that law inert.
    """

    def __init__(self, invariants=None, enforce: bool = False, classes=None,
                 slos=None):
        self.enforce = enforce
        self.violations: list[Violation] = []
        self.invariants: list[Invariant] = []
        self._closed = False
        names = INVARIANTS.names() if invariants is None else invariants
        for entry in names:
            if isinstance(entry, str):
                invariant = INVARIANTS.create(entry)
            elif isinstance(entry, Invariant):
                invariant = entry
            elif isinstance(entry, type) and issubclass(entry, Invariant):
                invariant = entry()
            else:
                raise ConfigurationError(
                    f"invariants must be registered names, Invariant "
                    f"classes, or instances; got {entry!r}"
                )
            invariant.classes = classes
            invariant.slos = slos
            invariant.bind(self._record)
            self.invariants.append(invariant)
        # per-hook dispatch lists, resolved once: most laws watch two
        # or three hooks, so fanning every hook out to every invariant
        # (and through every default no-op) was the observer's main
        # cost on the overhead bench.  Inactive laws (is_active false —
        # e.g. the budget law without declared SLOs) skip dispatch
        # entirely but stay in the ledger.
        active = [inv for inv in self.invariants if inv.is_active()]
        self._hooked = {
            hook: [
                inv for inv in active
                if getattr(type(inv), hook) is not getattr(RoundObserver, hook)
            ]
            for hook in (
                "on_round", "on_admit", "on_reject", "on_preempt",
                "on_migrate", "on_renegotiate", "on_depart",
                "on_capacity", "on_scale",
            )
        }

    def _record(self, violation: Violation) -> None:
        self.violations.append(violation)
        if self.enforce:
            raise InvariantViolationError(violation)

    # ------------------------------------------------------------------
    # dispatch each hook to the invariants that override it
    # ------------------------------------------------------------------

    def on_round(self, round_index, allocations, capacity, shard_id=None):
        for invariant in self._hooked["on_round"]:
            invariant.on_round(round_index, allocations, capacity, shard_id)

    def on_admit(self, spec, round_index, shard_id=None):
        for invariant in self._hooked["on_admit"]:
            invariant.on_admit(spec, round_index, shard_id)

    def on_reject(self, spec, round_index, shard_id=None):
        for invariant in self._hooked["on_reject"]:
            invariant.on_reject(spec, round_index, shard_id)

    def on_preempt(self, spec, round_index, shard_id=None):
        for invariant in self._hooked["on_preempt"]:
            invariant.on_preempt(spec, round_index, shard_id)

    def on_migrate(self, move, round_index):
        for invariant in self._hooked["on_migrate"]:
            invariant.on_migrate(move, round_index)

    def on_renegotiate(
        self, stream_id, old_target, new_target, round_index, shard_id=None
    ):
        for invariant in self._hooked["on_renegotiate"]:
            invariant.on_renegotiate(
                stream_id, old_target, new_target, round_index, shard_id
            )

    def on_depart(self, outcome, round_index, shard_id=None):
        for invariant in self._hooked["on_depart"]:
            invariant.on_depart(outcome, round_index, shard_id)

    def on_capacity(self, capacity, round_index, shard_id=None):
        for invariant in self._hooked["on_capacity"]:
            invariant.on_capacity(capacity, round_index, shard_id)

    def on_scale(self, action, round_index):
        for invariant in self._hooked["on_scale"]:
            invariant.on_scale(action, round_index)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Run end-of-run accounting (:func:`repro.serve` calls this
        once the run completes).

        When enforcement already aborted the run, finalizers still
        record their findings but never raise: ``close`` runs inside
        ``serve``'s cleanup, and a second raise there would mask the
        violation that stopped the run.
        """
        if self._closed:
            return
        self._closed = True
        enforce, self.enforce = self.enforce, self.enforce and not self.violations
        try:
            for invariant in self.invariants:
                invariant.finalize()
        finally:
            self.enforce = enforce

    def ledger(self) -> dict:
        """Machine-readable ledger: every checked law and its record."""
        by_name = {inv.name: 0 for inv in self.invariants}
        for violation in self.violations:
            by_name[violation.invariant] = (
                by_name.get(violation.invariant, 0) + 1
            )
        return {
            name: {
                "description": next(
                    (
                        inv.description
                        for inv in self.invariants
                        if inv.name == name
                    ),
                    "",
                ),
                "violations": count,
                "holds": count == 0,
            }
            for name, count in sorted(by_name.items())
        }

    @property
    def ok(self) -> bool:
        return not self.violations
