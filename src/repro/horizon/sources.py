"""Open-ended workload sources: always-on arrivals, generated lazily.

The finite scenarios in :mod:`repro.streams.scenarios` enumerate every
arrival up front, so a run ends when the list drains.  A 24/7 serving
system has no such list — load is a *rate profile* over time, streams
hang up when their viewers go idle, and the run is bounded by the
runner's ``max_rounds`` stop condition instead of clip length.

An :class:`OpenEndedScenario` therefore generates its arrivals lazily:
``arrivals_at(r)`` draws a Poisson count from ``rate(r)`` using a
per-round :class:`numpy.random.SeedSequence` spawned from ``(seed,
r)``, so the schedule is stateless (any round can be queried in any
order, any number of times, and always answers the same) and byte-for-
byte deterministic under a fixed seed.  Every emitted stream is
*unbounded* — it carries an :class:`~repro.streams.scenarios.
IdleDeparture` policy and loops its banked content until the idle
detector hangs it up.

Profiles (the three shapes a capacity controller must survive):

* :class:`DiurnalScenario` — a sinusoidal day/night swing between
  ``base_rate`` and ``peak_rate`` arrivals per round;
* :class:`FlashCrowdScenario` — a flat baseline with a short
  multiplicative spike (the breaking-news case);
* :class:`DriftScenario` — a slow linear ramp between two rates (the
  service-is-growing case).

Cluster wrappers (``*_cluster``) put the same arrival processes over a
multi-shard topology sized by an explicit per-shard capacity — the
autoscaler benchmarks provision the same profile at trough vs peak and
compare capacity-rounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.scenarios import ClusterScenario
from repro.errors import ConfigurationError
from repro.experiments.configs import scaled_config
from repro.streams.scenarios import IdleDeparture, Scenario, StreamSpec

#: Distinct content seeds cycled by the lazy generators.  A small pool
#: keeps the per-config simulation/table caches bounded on long runs;
#: per-stream timing still differs because the frame-time bank and the
#: signal/activity RNGs are salted by stream id.
CONTENT_SEEDS = 16


@dataclass(frozen=True)
class OpenEndedScenario(Scenario):
    """Base class for lazy, rate-driven arrival schedules.

    Subclasses implement :meth:`rate` (expected arrivals per round).
    ``specs`` stays empty — arrivals exist only through
    :meth:`arrivals_at`.  ``classes`` assigns service tiers to new
    streams by a deterministic per-round draw (empty = unclassed).
    """

    open_ended = True

    seed: int = 7
    scale: int = 20
    loop_frames: int = 24
    weight: float = 1.0
    classes: tuple[str, ...] = ()
    lifetime: IdleDeparture = IdleDeparture()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError("seed must be >= 0")
        if self.loop_frames < 1:
            raise ConfigurationError("loop_frames must be >= 1")
        if self.weight <= 0:
            raise ConfigurationError("weight must be positive")
        if not isinstance(self.lifetime, IdleDeparture):
            raise ConfigurationError(
                "lifetime must be an IdleDeparture (open-ended streams "
                "need a departure policy)"
            )

    # ------------------------------------------------------------------
    # the profile
    # ------------------------------------------------------------------

    def rate(self, round_index: int) -> float:
        """Expected arrivals this round (the load profile)."""
        raise NotImplementedError

    def arrivals_at(self, round_index: int) -> list[StreamSpec]:
        lam = self.rate(round_index)
        if lam <= 0:
            return []
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, round_index])
        )
        count = int(rng.poisson(lam))
        specs = []
        for i in range(count):
            content = int(rng.integers(CONTENT_SEEDS))
            service_class = (
                self.classes[int(rng.integers(len(self.classes)))]
                if self.classes
                else None
            )
            specs.append(
                StreamSpec(
                    name=f"live-{round_index}-{i}",
                    arrival_round=round_index,
                    config=scaled_config(
                        scale=self.scale,
                        seed=self.seed + 100 + content,
                        frames=self.loop_frames,
                    ),
                    weight=self.weight,
                    service_class=service_class,
                    lifetime=self.lifetime,
                )
            )
        return specs

    # ------------------------------------------------------------------
    # interface guards / sizing helpers
    # ------------------------------------------------------------------

    @property
    def last_arrival_round(self) -> int:
        raise ConfigurationError(
            f"scenario {self.name!r} is open-ended: it has no last "
            "arrival round — bound the run with an explicit max_rounds"
        )

    def total_demand(self) -> float:
        raise ConfigurationError(
            f"scenario {self.name!r} is open-ended: total demand is "
            "unbounded — size capacity from expected_concurrency instead"
        )

    def stream_demand(self) -> float:
        """Cycles per round one stream needs at dedicated speed."""
        return scaled_config(scale=self.scale, seed=self.seed).period

    def expected_concurrency(self, round_index: int) -> float:
        """Little's-law concurrency estimate at ``round_index``."""
        return self.rate(round_index) * self.lifetime.mean_lifetime()

    def peak_rate(self) -> float:
        """Upper bound of :meth:`rate` (subclasses know their shape)."""
        raise NotImplementedError

    def trough_rate(self) -> float:
        """Lower bound of :meth:`rate` (subclasses know their shape)."""
        raise NotImplementedError


@dataclass(frozen=True)
class DiurnalScenario(OpenEndedScenario):
    """Sinusoidal day/night load: trough at round 0, one full cycle
    every ``period_rounds`` rounds."""

    base_rate: float = 0.2
    peak: float = 0.6
    period_rounds: int = 120

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base_rate < 0 or self.peak < self.base_rate:
            raise ConfigurationError("need 0 <= base_rate <= peak")
        if self.period_rounds < 2:
            raise ConfigurationError("period_rounds must be >= 2")

    def rate(self, round_index: int) -> float:
        phase = 2.0 * math.pi * round_index / self.period_rounds
        swing = (1.0 - math.cos(phase)) / 2.0
        return self.base_rate + (self.peak - self.base_rate) * swing

    def peak_rate(self) -> float:
        return self.peak

    def trough_rate(self) -> float:
        return self.base_rate


@dataclass(frozen=True)
class FlashCrowdScenario(OpenEndedScenario):
    """Flat baseline plus a short multiplicative spike."""

    base_rate: float = 0.25
    crowd_round: int = 40
    crowd_rate: float = 2.0
    crowd_width: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.base_rate < 0 or self.crowd_rate < self.base_rate:
            raise ConfigurationError("need 0 <= base_rate <= crowd_rate")
        if self.crowd_round < 0 or self.crowd_width < 1:
            raise ConfigurationError(
                "crowd_round must be >= 0 and crowd_width >= 1"
            )

    def rate(self, round_index: int) -> float:
        if self.crowd_round <= round_index < self.crowd_round + self.crowd_width:
            return self.crowd_rate
        return self.base_rate

    def peak_rate(self) -> float:
        return self.crowd_rate

    def trough_rate(self) -> float:
        return self.base_rate


@dataclass(frozen=True)
class DriftScenario(OpenEndedScenario):
    """Slow linear ramp from ``start_rate`` to ``end_rate`` over
    ``drift_rounds`` rounds, flat afterwards."""

    start_rate: float = 0.15
    end_rate: float = 0.6
    drift_rounds: int = 200

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.start_rate < 0 or self.end_rate < 0:
            raise ConfigurationError("rates must be >= 0")
        if self.drift_rounds < 1:
            raise ConfigurationError("drift_rounds must be >= 1")

    def rate(self, round_index: int) -> float:
        frac = min(1.0, round_index / self.drift_rounds)
        return self.start_rate + (self.end_rate - self.start_rate) * frac

    def peak_rate(self) -> float:
        return max(self.start_rate, self.end_rate)

    def trough_rate(self) -> float:
        return min(self.start_rate, self.end_rate)


# ----------------------------------------------------------------------
# registry-facing generators
# ----------------------------------------------------------------------

def diurnal_live(
    base_rate: float = 0.2,
    peak: float = 0.6,
    period_rounds: int = 120,
    scale: int = 20,
    loop_frames: int = 24,
    seed: int = 7,
    classes: tuple[str, ...] = (),
    lifetime: IdleDeparture | None = None,
) -> DiurnalScenario:
    """The diurnal sinusoid as a single-pool (fleet) scenario."""
    return DiurnalScenario(
        name=f"diurnal[{base_rate}..{peak}/{period_rounds}]",
        base_rate=base_rate,
        peak=peak,
        period_rounds=period_rounds,
        scale=scale,
        loop_frames=loop_frames,
        seed=seed,
        classes=tuple(classes),
        lifetime=lifetime if lifetime is not None else IdleDeparture(),
    )


def flash_crowd_live(
    base_rate: float = 0.25,
    crowd_round: int = 40,
    crowd_rate: float = 2.0,
    crowd_width: int = 4,
    scale: int = 20,
    loop_frames: int = 24,
    seed: int = 7,
    classes: tuple[str, ...] = (),
    lifetime: IdleDeparture | None = None,
) -> FlashCrowdScenario:
    """Flash crowd on an always-on baseline (fleet topology)."""
    return FlashCrowdScenario(
        name=f"flash-live[{base_rate}+{crowd_rate}@{crowd_round}]",
        base_rate=base_rate,
        crowd_round=crowd_round,
        crowd_rate=crowd_rate,
        crowd_width=crowd_width,
        scale=scale,
        loop_frames=loop_frames,
        seed=seed,
        classes=tuple(classes),
        lifetime=lifetime if lifetime is not None else IdleDeparture(),
    )


def drift_live(
    start_rate: float = 0.15,
    end_rate: float = 0.6,
    drift_rounds: int = 200,
    scale: int = 20,
    loop_frames: int = 24,
    seed: int = 7,
    classes: tuple[str, ...] = (),
    lifetime: IdleDeparture | None = None,
) -> DriftScenario:
    """Slow load drift (fleet topology)."""
    return DriftScenario(
        name=f"drift[{start_rate}->{end_rate}/{drift_rounds}]",
        start_rate=start_rate,
        end_rate=end_rate,
        drift_rounds=drift_rounds,
        scale=scale,
        loop_frames=loop_frames,
        seed=seed,
        classes=tuple(classes),
        lifetime=lifetime if lifetime is not None else IdleDeparture(),
    )


def _clusterize(
    arrivals: OpenEndedScenario,
    shards: int,
    shard_capacity: float | None,
    provision_concurrency: float | None,
) -> ClusterScenario:
    """Wrap an open-ended arrival process into a shard topology.

    ``shard_capacity`` sets each shard's budget directly; otherwise
    ``provision_concurrency`` (streams the whole cluster should carry
    at dedicated speed) is converted via the per-stream demand.  With
    neither, the cluster is statically provisioned for the *peak*
    expected concurrency — the baseline an autoscaler is measured
    against.
    """
    if shards < 1:
        raise ConfigurationError("shards must be >= 1")
    if shard_capacity is None:
        if provision_concurrency is None:
            provision_concurrency = (
                arrivals.peak_rate() * arrivals.lifetime.mean_lifetime()
            )
        if provision_concurrency <= 0:
            raise ConfigurationError(
                "need shard_capacity or a positive provision_concurrency"
            )
        total = provision_concurrency * arrivals.stream_demand()
        shard_capacity = total / shards
    if shard_capacity <= 0:
        raise ConfigurationError("shard_capacity must be positive")
    return ClusterScenario(
        name=f"{arrivals.name}@{shards}x{shard_capacity:.3g}",
        arrivals=arrivals,
        shard_capacities=(float(shard_capacity),) * shards,
    )


def diurnal_cluster(
    shards: int = 2,
    shard_capacity: float | None = None,
    provision_concurrency: float | None = None,
    **kwargs,
) -> ClusterScenario:
    """Diurnal always-on load over ``shards`` equal pools."""
    return _clusterize(
        diurnal_live(**kwargs), shards, shard_capacity, provision_concurrency
    )


def flash_crowd_cluster(
    shards: int = 2,
    shard_capacity: float | None = None,
    provision_concurrency: float | None = None,
    **kwargs,
) -> ClusterScenario:
    """Flash-crowd-on-baseline load over ``shards`` equal pools."""
    return _clusterize(
        flash_crowd_live(**kwargs), shards, shard_capacity, provision_concurrency
    )


def drift_cluster(
    shards: int = 2,
    shard_capacity: float | None = None,
    provision_concurrency: float | None = None,
    **kwargs,
) -> ClusterScenario:
    """Slow-drift always-on load over ``shards`` equal pools."""
    return _clusterize(
        drift_live(**kwargs), shards, shard_capacity, provision_concurrency
    )
