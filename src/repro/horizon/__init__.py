"""Long-horizon always-on serving: open-ended sources + autoscaling.

The PR-9 subsystem.  Everything before it ran *clips*: a scenario
listed finitely many arrivals, every stream had a known frame count,
and the runners stopped when the last session drained.  Always-on
serving breaks both assumptions, and this package supplies the two
halves:

* :mod:`repro.horizon.sources` — open-ended scenarios
  (:class:`DiurnalScenario`, :class:`FlashCrowdScenario`,
  :class:`DriftScenario`) that generate Poisson arrivals lazily per
  round, forever, with unbounded stream lifetimes ended by the
  EWMA idle detector (:class:`~repro.streams.scenarios.IdleDeparture`);
  runs are bounded only by the serving spec's explicit ``max_rounds``;
* :mod:`repro.horizon.autoscaler` — the :class:`Autoscaler` policy
  protocol and the telemetry-driven :class:`SignalAutoscaler`, which
  turn windowed serving metrics into :class:`ScaleAction`s
  (add / remove / split / merge) that the cluster runner applies
  between rounds under the ``scale-conservation`` and pacing
  invariants (:mod:`repro.obs.invariants`).

Import discipline: this package imports only streams/cluster/sla/obs
leaves; the serving registry imports *it* (to register scenarios and
the ``signal`` autoscaler), never the other way around.
"""

from repro.horizon.autoscaler import (
    SCALE_KINDS,
    Autoscaler,
    ScaleAction,
    ScheduledAutoscaler,
    SignalAutoscaler,
)
from repro.horizon.sources import (
    CONTENT_SEEDS,
    DiurnalScenario,
    DriftScenario,
    FlashCrowdScenario,
    OpenEndedScenario,
    diurnal_cluster,
    diurnal_live,
    drift_cluster,
    drift_live,
    flash_crowd_cluster,
    flash_crowd_live,
)

__all__ = [
    "CONTENT_SEEDS",
    "SCALE_KINDS",
    "Autoscaler",
    "DiurnalScenario",
    "DriftScenario",
    "FlashCrowdScenario",
    "OpenEndedScenario",
    "ScaleAction",
    "ScheduledAutoscaler",
    "SignalAutoscaler",
    "diurnal_cluster",
    "diurnal_live",
    "drift_cluster",
    "drift_live",
    "flash_crowd_cluster",
    "flash_crowd_live",
]
