"""Telemetry-driven cluster autoscaling: signals in, scale actions out.

The always-on serving loop never finishes on its own, so capacity has
to track demand instead of being provisioned once for the peak.  An
:class:`Autoscaler` closes that loop: it watches the run through a
private :class:`~repro.obs.metrics.TelemetryObserver` (the runner
attaches whatever :meth:`Autoscaler.observer` returns) and, once per
telemetry window, emits :class:`ScaleAction`s that
:class:`~repro.cluster.runner.ClusterRunner` applies between rounds.

The reference policy, :class:`SignalAutoscaler`, uses the two signals
the telemetry layer was built to expose:

* **scale-up** — sustained *down-step* renegotiation density, weighted
  per service class by the SLA catalog's arbitration weights
  (:func:`repro.sla.signals.weighted_pressure`): when gold streams are
  repeatedly stepping their quality targets down, the cluster is out
  of capacity where it matters;
* **scale-down** — a quiet window (zero down-steps) at low
  utilization: the fleet is recovered and over-provisioned.

Both directions require ``sustain`` consecutive qualifying windows
(hysteresis) and respect a ``cooldown`` in rounds between actions, so
a diurnal workload ramps smoothly instead of thrashing at the
threshold — the pacing invariants in :mod:`repro.obs.invariants` check
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.metrics import TelemetryObserver
from repro.sla.signals import class_pressure_weights, weighted_pressure

#: Legal :class:`ScaleAction` kinds.
SCALE_KINDS = ("add", "remove", "split", "merge")


@dataclass(frozen=True)
class ScaleAction:
    """One provisioning decision, validated structurally at build time.

    ``kind`` selects the shape:

    * ``"add"`` — provision one new shard; no ``shards``, exactly one
      positive capacity in ``capacities``;
    * ``"remove"`` — retire one shard (its sessions are relocated, or
      the action aborts); exactly one id in ``shards``, no
      ``capacities``;
    * ``"split"`` — replace one shard with two or more whose
      capacities **must sum to the original** (checked at apply time);
      one id in ``shards``, two or more positive ``capacities``;
    * ``"merge"`` — replace two or more shards with one; two or more
      ids in ``shards``, ``capacities`` empty (the merged shard gets
      the exact sum) or a single value that must equal that sum.

    ``created`` and ``action_id`` are filled in by the runner (via
    ``dataclasses.replace``) immediately before the ``on_scale``
    observers fire: ``created`` holds the ids of the shards the action
    creates, ``action_id`` a deterministic per-run serial
    (``scale-action-<n>``) that trace records use as the causal edge
    from a migration or capacity change back to the action that forced
    it.  Policies always leave both empty.
    """

    kind: str
    shards: tuple[str, ...] = ()
    capacities: tuple[float, ...] = ()
    reason: str = ""
    created: tuple[str, ...] = ()
    action_id: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        object.__setattr__(
            self, "capacities", tuple(float(c) for c in self.capacities)
        )
        object.__setattr__(self, "created", tuple(self.created))
        if self.kind not in SCALE_KINDS:
            raise ConfigurationError(
                f"unknown scale action kind {self.kind!r} "
                f"(expected one of {SCALE_KINDS})"
            )
        if any(c <= 0 for c in self.capacities):
            raise ConfigurationError(
                f"scale action capacities must be positive, "
                f"got {self.capacities!r}"
            )
        if len(set(self.shards)) != len(self.shards):
            raise ConfigurationError(
                f"scale action shards must be unique, got {self.shards!r}"
            )
        if self.kind == "add":
            if self.shards or len(self.capacities) != 1:
                raise ConfigurationError(
                    "add takes no shards and exactly one capacity"
                )
        elif self.kind == "remove":
            if len(self.shards) != 1 or self.capacities:
                raise ConfigurationError(
                    "remove takes exactly one shard and no capacities"
                )
        elif self.kind == "split":
            if len(self.shards) != 1 or len(self.capacities) < 2:
                raise ConfigurationError(
                    "split takes exactly one shard and two or more "
                    "capacities"
                )
        elif self.kind == "merge":
            if len(self.shards) < 2 or len(self.capacities) > 1:
                raise ConfigurationError(
                    "merge takes two or more shards and at most one "
                    "capacity"
                )

    @property
    def provisioned(self) -> float:
        """Signed change in total declared capacity.

        Positive for ``add``; ``remove`` is only known at apply time
        (the retired shard's capacity), reported as 0 here; ``split``
        and ``merge`` conserve exactly.
        """
        return sum(self.capacities) if self.kind == "add" else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "shards": list(self.shards),
            "capacities": list(self.capacities),
            "reason": self.reason,
            "created": list(self.created),
            "action_id": self.action_id,
        }


class Autoscaler:
    """Base autoscaling policy: observes nothing, never scales.

    Subclasses override :meth:`plan` (called by the cluster runner
    after every stepped round) and usually :meth:`observer` (an extra
    :class:`~repro.serving.observers.RoundObserver` the runner attaches
    for the policy's own signal collection — kept private so user
    observers and policy state never interfere).
    """

    name = "static"

    def observer(self):
        """The policy's private observer, or ``None`` for none."""
        return None

    def reset(self) -> None:
        """Drop all learned state (runner calls this from ``reset``)."""

    def plan(self, shards, round_index) -> list[ScaleAction]:
        """Scale actions to apply after ``round_index`` (may be empty).

        ``shards`` is the live shard list (read-only: inspect
        ``capacity``, ``active``, ``queue``, ``headroom()`` — never
        mutate; all mutation goes through the returned actions so the
        conservation ledger and observers see every change).
        """
        return []


class SignalAutoscaler(Autoscaler):
    """Scale on telemetry windows: SLA-weighted pressure up, quiet
    low-utilization windows down.

    Parameters
    ----------
    window:
        Telemetry window length in rounds; decisions land on window
        boundaries (round ``k * window - 1``, after the window closed).
    up_pressure:
        Weighted down-step renegotiation density at or above which a
        window counts toward scale-up.
    down_utilization:
        Utilization at or below which a window with **zero** down-steps
        counts toward scale-down.
    sustain:
        Consecutive qualifying windows required before acting
        (hysteresis: one noisy window never scales).
    cooldown:
        Minimum rounds between two actions; also the post-action
        settling time during which both streaks restart from zero.
    reject_pressure:
        Weight of the window's *rejection* density in the scale-up
        pressure.  A feasibility-gated cluster under-provisioned for
        its load rejects instead of renegotiating — without this term
        the controller would see a calm fleet while arrivals bounce off
        the door.
    queue_pressure:
        Weight of the *wait queue* in the scale-up pressure: the
        class-weighted count of queued arrivals per shard at decision
        time.  An admission gate turns overload into queueing long
        before it turns into rejections, so a growing queue is the
        earliest saturation signal a gated cluster emits.
    down_quality:
        Window mean quality at or above which a zero-down-step window
        counts toward scale-down regardless of utilization (``None``
        disables the signal).  Work-conserving arbiters grant the
        whole pool every round — streams absorb slack as extra quality
        — so ``utilization`` saturates near 1.0 even on a fleet twice
        the size the workload needs.  Quality saturation is the
        over-provisioning signal that survives headroom lending: when
        every stream already renders at the catalog ceiling, the
        marginal shard is buying nothing.
    add_capacity:
        Capacity of a scale-up's new shard (default: the mean capacity
        of the live shards, so the cluster grows in its own units).
    min_shards / max_shards:
        Hard bounds on the fleet size; plans outside them are skipped.
    classes:
        SLA catalog for pressure weighting (anything
        :func:`repro.sla.classes.resolve_classes` accepts).
    """

    name = "signal"

    def __init__(
        self,
        window: int = 25,
        up_pressure: float = 0.1,
        down_utilization: float = 0.5,
        sustain: int = 2,
        cooldown: int = 50,
        reject_pressure: float = 3.0,
        queue_pressure: float = 0.05,
        down_quality: float | None = None,
        add_capacity: float | None = None,
        min_shards: int = 1,
        max_shards: int = 12,
        classes=None,
    ) -> None:
        if not isinstance(window, int) or isinstance(window, bool) or window < 1:
            raise ConfigurationError(
                f"window must be an integer >= 1, got {window!r}"
            )
        if not up_pressure > 0:
            raise ConfigurationError(
                f"up_pressure must be positive, got {up_pressure!r}"
            )
        if not 0 < down_utilization < 1:
            raise ConfigurationError(
                f"down_utilization must be in (0, 1), got {down_utilization!r}"
            )
        if not isinstance(sustain, int) or isinstance(sustain, bool) or sustain < 1:
            raise ConfigurationError(
                f"sustain must be an integer >= 1, got {sustain!r}"
            )
        if (
            not isinstance(cooldown, int)
            or isinstance(cooldown, bool)
            or cooldown < 1
        ):
            raise ConfigurationError(
                f"cooldown must be an integer >= 1, got {cooldown!r}"
            )
        if reject_pressure < 0:
            raise ConfigurationError(
                f"reject_pressure must be >= 0, got {reject_pressure!r}"
            )
        if queue_pressure < 0:
            raise ConfigurationError(
                f"queue_pressure must be >= 0, got {queue_pressure!r}"
            )
        if down_quality is not None and not down_quality > 0:
            raise ConfigurationError(
                f"down_quality must be positive, got {down_quality!r}"
            )
        if add_capacity is not None and not add_capacity > 0:
            raise ConfigurationError(
                f"add_capacity must be positive, got {add_capacity!r}"
            )
        if min_shards < 1 or max_shards < min_shards:
            raise ConfigurationError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{min_shards!r}..{max_shards!r}"
            )
        self.window = window
        self.up_pressure = up_pressure
        self.down_utilization = down_utilization
        self.sustain = sustain
        self.cooldown = cooldown
        self.reject_pressure = reject_pressure
        self.queue_pressure = queue_pressure
        self.down_quality = down_quality
        self.add_capacity = add_capacity
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.weights = class_pressure_weights(classes)
        self._telemetry = TelemetryObserver(window=window)
        self._up_streak = 0
        self._down_streak = 0
        self._last_action: int | None = None

    def observer(self):
        return self._telemetry

    def reset(self) -> None:
        self._telemetry = TelemetryObserver(window=self.window)
        self._up_streak = 0
        self._down_streak = 0
        self._last_action = None

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------

    def pressure(self, summary: dict) -> float:
        """SLA-weighted scale-up pressure of one telemetry window.

        Down-step renegotiation density weighted per class (the
        per-class map counts steps in both directions, so it is scaled
        by the window's down-step fraction — a window of pure
        headroom-driven recoveries exerts zero upward pressure), plus
        ``reject_pressure`` times the window's rejection density.
        """
        total = summary.get("renegotiations", 0)
        down = summary.get("renegotiations_down", 0)
        value = 0.0
        if down:
            raw = weighted_pressure(
                summary.get("renegotiation_density_by_class", {}),
                self.weights,
            )
            value += raw * (down / total)
        rounds = summary.get("rounds", 0)
        if rounds:
            value += (
                self.reject_pressure * summary.get("rejected", 0) / rounds
            )
        return value

    def _backlog(self, shards) -> float:
        """Class-weighted queued arrivals per shard, right now."""
        if not shards:
            return 0.0
        weighted = sum(
            self.weights.get(
                spec.service_class if spec.service_class is not None
                else "unclassed",
                1.0,
            )
            for shard in shards
            for spec in shard.queue
        )
        return self.queue_pressure * weighted / len(shards)

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(self, shards, round_index) -> list[ScaleAction]:
        if (round_index + 1) % self.window != 0:
            return []
        summary = self._telemetry.current()
        if summary["rounds"] == 0:
            return []
        pressure = self.pressure(summary) + self._backlog(shards)
        utilization = summary.get("utilization")
        quality = summary.get("mean_quality")
        slack = (
            utilization is not None
            and utilization <= self.down_utilization
        ) or (
            self.down_quality is not None
            and quality is not None
            and quality >= self.down_quality
        )
        quiet = (
            summary.get("renegotiations_down", 0) == 0
            and slack
            and not any(shard.queue for shard in shards)
        )
        self._up_streak = self._up_streak + 1 if pressure >= self.up_pressure else 0
        self._down_streak = self._down_streak + 1 if quiet else 0
        if (
            self._last_action is not None
            and round_index - self._last_action < self.cooldown
        ):
            return []
        if self._up_streak >= self.sustain and len(shards) < self.max_shards:
            capacity = self.add_capacity
            if capacity is None:
                capacity = sum(s.capacity for s in shards) / len(shards)
            self._last_action = round_index
            self._up_streak = 0
            self._down_streak = 0
            return [
                ScaleAction(
                    kind="add",
                    capacities=(capacity,),
                    reason=(
                        f"pressure {pressure:.3f} >= {self.up_pressure} "
                        f"for {self.sustain} windows"
                    ),
                )
            ]
        if self._down_streak >= self.sustain and len(shards) > self.min_shards:
            emptiest = min(
                shards,
                key=lambda s: (len(s.active) + len(s.queue), s.capacity, s.shard_id),
            )
            self._last_action = round_index
            self._up_streak = 0
            self._down_streak = 0
            return [
                ScaleAction(
                    kind="remove",
                    shards=(emptiest.shard_id,),
                    reason=(
                        f"quiet for {self.sustain} windows "
                        f"(utilization {utilization:.3f}, "
                        f"mean quality {quality})"
                    ),
                )
            ]
        return []


@dataclass(frozen=True)
class ScheduledAutoscaler(Autoscaler):
    """Replay a fixed script of ``(round_index, ScaleAction)`` pairs.

    The deterministic workhorse for tests and property checks: no
    telemetry, no hysteresis — at each listed round it emits the listed
    actions verbatim (in order), so conservation and pacing invariants
    can be exercised against arbitrary action sequences.
    """

    schedule: tuple = field(default_factory=tuple)
    name = "scheduled"

    def plan(self, shards, round_index) -> list[ScaleAction]:
        return [
            action for at, action in self.schedule if at == round_index
        ]
