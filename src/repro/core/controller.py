"""The reference QoS controller — the abstract algorithm of section 2.2.

The controller computes incrementally a schedule ``alpha_n`` and a
quality assignment ``theta_n``, one pair ``(alpha_i, theta_i)`` per
computation step, by cooperation of a *Scheduler* (``Best_Sched``) and a
*Quality Manager* (maximal ``q`` under ``Qual_Const``)::

    i := 0
    while i < |A| do
        for q in Q do theta_q := theta |>i q
        for q in Q do alpha_q := Best_Sched(alpha, theta_q, i)
        qM = max{ q | Qual_Const(alpha_q, theta_q, t, i) }
        (alpha, theta) := (alpha_qM, theta_qM)
        i := i + 1
    end while

This class is a faithful, unoptimized transliteration: at every step it
re-runs EDF per candidate quality and re-walks the whole suffix to
evaluate the constraints (O(n^2 |Q|) per cycle).  It exists as the
semantic reference; production use goes through
:class:`repro.core.fast_controller.TableDrivenController`, which is
tested to agree with this class decision-for-decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.action import Action
from repro.core.constraints import ConstraintEvaluation, evaluate_constraints
from repro.core.edf import best_sched
from repro.core.policies import DecisionContext, MaximalQualityPolicy, QualityPolicy
from repro.core.sequences import Time
from repro.core.system import ParameterizedSystem
from repro.core.timing import QualityAssignment
from repro.errors import ConfigurationError, SequenceError

#: Constraint modes: the paper's hard predicate, the soft (section 4)
#: average-only variant, and the safety-only degenerate mode.
CONSTRAINT_MODES = ("both", "average", "worst")


@dataclass(frozen=True)
class Decision:
    """One controller step: which action to run next, and at what quality."""

    step: int
    action: Action
    quality: int
    feasible_qualities: tuple[int, ...]
    evaluations: dict[int, ConstraintEvaluation] = field(compare=False)
    degraded: bool = False

    @property
    def safe(self) -> bool:
        """False when no quality satisfied the constraints (contract broken)."""
        return not self.degraded


class ReferenceController:
    """Faithful implementation of the paper's abstract control algorithm.

    Usage per cycle::

        controller = ReferenceController(system)
        controller.start_cycle()
        while not controller.done:
            decision = controller.decide()
            actual = run(decision.action, decision.quality)   # environment
            controller.record_completion(actual)

    Parameters
    ----------
    system:
        The parameterized real-time system (validated on construction).
    policy:
        Final quality selection among constraint-satisfying levels; the
        default is the paper's maximal policy.
    constraint_mode:
        ``"both"`` (hard deadlines, paper default), ``"average"`` (soft
        deadlines, section 4) or ``"worst"`` (safety only).
    validate:
        When true (default), check the Problem precondition — a feasible
        schedule at ``qmin`` under worst-case times must exist.
    """

    def __init__(
        self,
        system: ParameterizedSystem,
        policy: QualityPolicy | None = None,
        constraint_mode: str = "both",
        validate: bool = True,
    ) -> None:
        if constraint_mode not in CONSTRAINT_MODES:
            raise ConfigurationError(
                f"constraint_mode must be one of {CONSTRAINT_MODES}, got {constraint_mode!r}"
            )
        self.system = system
        self.policy = policy if policy is not None else MaximalQualityPolicy()
        self.constraint_mode = constraint_mode
        if validate:
            system.validate()
        self._armed = False
        self.start_cycle()

    # ------------------------------------------------------------------
    # cycle lifecycle
    # ------------------------------------------------------------------

    def start_cycle(self) -> None:
        """Re-arm the controller at control location 0 of a fresh cycle."""
        qmin = self.system.qmin
        self.schedule: list[Action] = self.system.baseline_schedule()
        self.assignment = QualityAssignment.constant(self.system.graph.actions, qmin)
        self.step = 0
        self.elapsed: Time = 0.0
        self.previous_quality: int | None = None
        self.decisions: list[Decision] = []
        self._pending: Decision | None = None
        self._armed = True
        reset = getattr(self.policy, "reset", None)
        if callable(reset):
            reset()

    @property
    def done(self) -> bool:
        """True once every action of the cycle has been executed."""
        return self.step >= len(self.system.graph.actions)

    # ------------------------------------------------------------------
    # one controller step
    # ------------------------------------------------------------------

    def decide(self) -> Decision:
        """Run one iteration of the abstract algorithm at the current ``t``.

        Returns the action to execute next and its quality level.  The
        caller must report the actual execution time through
        :meth:`record_completion` before deciding again.
        """
        if not self._armed or self.done:
            raise SequenceError("controller cycle is complete; call start_cycle()")
        if self._pending is not None:
            raise SequenceError("previous decision not yet completed")

        i = self.step
        t = self.elapsed
        qmin = self.system.qmin

        candidates: dict[int, tuple[list[Action], QualityAssignment, ConstraintEvaluation]] = {}
        feasible: list[int] = []
        for q in self.system.quality_set:
            theta_q = self.assignment.override_suffix(self.schedule, i, q)
            deadline_of = self.system.deadlines.under(theta_q)
            alpha_q = best_sched(self.system.graph, self.schedule, deadline_of, i)
            evaluation = evaluate_constraints(
                alpha_q,
                theta_q,
                self.system.average_times,
                self.system.worst_times,
                self.system.deadlines,
                i,
                qmin,
            )
            candidates[q] = (alpha_q, theta_q, evaluation)
            if evaluation.satisfied(t, self.constraint_mode):
                feasible.append(q)

        degraded = not feasible
        if degraded:
            # Contract violated (C > Cwc happened earlier, or the system
            # was not validated): fall back to minimum quality; a miss
            # may already be unavoidable.
            feasible = [qmin]
        context = DecisionContext(
            step=i,
            previous_quality=self.previous_quality,
            quality_set=self.system.quality_set,
        )
        chosen = self.policy.select(tuple(sorted(feasible)), context)

        alpha_chosen, theta_chosen, _ = candidates[chosen]
        self.schedule = alpha_chosen
        self.assignment = theta_chosen

        decision = Decision(
            step=i,
            action=self.schedule[i],
            quality=chosen,
            feasible_qualities=tuple(sorted(feasible)) if not degraded else (),
            evaluations={q: candidates[q][2] for q in candidates},
            degraded=degraded,
        )
        self._pending = decision
        return decision

    def record_completion(self, actual_time: Time) -> None:
        """Report the actual execution time of the last decided action.

        Advances the control location: ``t`` grows by the actual time
        (the controller reads the platform's cycle counter; here the
        environment pushes the measurement).
        """
        if self._pending is None:
            raise SequenceError("no pending decision to complete")
        if actual_time < 0:
            raise ConfigurationError(f"actual execution time must be >= 0, got {actual_time}")
        self.elapsed += actual_time
        self.previous_quality = self._pending.quality
        self.decisions.append(self._pending)
        self._pending = None
        self.step += 1

    # ------------------------------------------------------------------
    # whole-cycle convenience driver
    # ------------------------------------------------------------------

    def run_cycle(self, time_source) -> "CycleResult":
        """Drive a full cycle, pulling actual times from ``time_source``.

        ``time_source(action, quality) -> Time`` models the platform.
        Returns the realized schedule, assignment, and timing.
        """
        self.start_cycle()
        while not self.done:
            decision = self.decide()
            actual = time_source(decision.action, decision.quality)
            self.record_completion(actual)
        return CycleResult(
            schedule=tuple(self.schedule),
            qualities=tuple(d.quality for d in self.decisions),
            total_time=self.elapsed,
            degraded_steps=sum(1 for d in self.decisions if d.degraded),
        )


@dataclass(frozen=True)
class CycleResult:
    """Outcome of one controlled cycle."""

    schedule: tuple[Action, ...]
    qualities: tuple[int, ...]
    total_time: Time
    degraded_steps: int

    @property
    def min_quality(self) -> int:
        return min(self.qualities)

    @property
    def max_quality(self) -> int:
        return max(self.qualities)
