"""Precedence graphs (Definition 2.1).

A real-time system's application software is modelled by a partial
order on its actions, represented by a precedence graph
``G = (A, ->)`` with ``-> subset of A x A``.  An action ``a'`` can start
only once every predecessor ``a`` with ``a -> a'`` has completed.

The graph must be acyclic: a cyclic precedence relation admits no
execution sequence.  This module implements the graph datatype plus the
traversals the rest of the library needs: topological orders,
execution-sequence validation, transitive closure and iterated
(unfolded) composition.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.action import Action, iterated_action
from repro.errors import GraphError, SequenceError


@dataclass(frozen=True)
class PrecedenceGraph:
    """An immutable DAG over a finite action vocabulary.

    Parameters
    ----------
    actions:
        The action vocabulary ``A`` (order is preserved and used as a
        deterministic tie-break in traversals).
    edges:
        The precedence relation ``->`` as ``(a, a')`` pairs meaning
        ``a`` must complete before ``a'`` starts.
    """

    actions: tuple[Action, ...]
    edges: frozenset[tuple[Action, Action]]
    _successors: Mapping[Action, tuple[Action, ...]] = field(repr=False, compare=False, default=None)  # type: ignore[assignment]
    _predecessors: Mapping[Action, tuple[Action, ...]] = field(repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(set(self.actions)) != len(self.actions):
            raise GraphError("duplicate actions in vocabulary")
        known = set(self.actions)
        for src, dst in self.edges:
            if src not in known or dst not in known:
                raise GraphError(f"edge ({src!r}, {dst!r}) references unknown action")
            if src == dst:
                raise GraphError(f"self-loop on action {src!r}")
        succ: dict[Action, list[Action]] = {a: [] for a in self.actions}
        pred: dict[Action, list[Action]] = {a: [] for a in self.actions}
        rank = {a: i for i, a in enumerate(self.actions)}
        for src, dst in sorted(self.edges, key=lambda e: (rank[e[0]], rank[e[1]])):
            succ[src].append(dst)
            pred[dst].append(src)
        object.__setattr__(self, "_successors", {a: tuple(v) for a, v in succ.items()})
        object.__setattr__(self, "_predecessors", {a: tuple(v) for a, v in pred.items()})
        # Reject cyclic precedence relations up front: Kahn's algorithm
        # must consume every action.
        if len(self.topological_order()) != len(self.actions):
            raise GraphError("precedence relation contains a cycle")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[Action, Action]],
        actions: Iterable[Action] | None = None,
    ) -> "PrecedenceGraph":
        """Build a graph from an edge list, inferring the vocabulary if needed."""
        edge_list = [(str(a), str(b)) for a, b in edges]
        if actions is None:
            seen: list[Action] = []
            for a, b in edge_list:
                for x in (a, b):
                    if x not in seen:
                        seen.append(x)
            vocabulary = tuple(seen)
        else:
            vocabulary = tuple(actions)
        return cls(vocabulary, frozenset(edge_list))

    @classmethod
    def chain(cls, actions: Sequence[Action]) -> "PrecedenceGraph":
        """A total order ``a1 -> a2 -> ... -> an`` (a simple pipeline)."""
        acts = tuple(actions)
        return cls(acts, frozenset(zip(acts, acts[1:])))

    @classmethod
    def independent(cls, actions: Sequence[Action]) -> "PrecedenceGraph":
        """A graph with no precedence constraints at all."""
        return cls(tuple(actions), frozenset())

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.actions)

    def __contains__(self, action: object) -> bool:
        return action in self._successors

    def successors(self, action: Action) -> tuple[Action, ...]:
        """Direct successors of ``action`` (actions it must precede)."""
        self._require(action)
        return self._successors[action]

    def predecessors(self, action: Action) -> tuple[Action, ...]:
        """Direct predecessors of ``action`` (actions that must precede it)."""
        self._require(action)
        return self._predecessors[action]

    def sources(self) -> tuple[Action, ...]:
        """Actions with no predecessors (ready at the start of a cycle)."""
        return tuple(a for a in self.actions if not self._predecessors[a])

    def sinks(self) -> tuple[Action, ...]:
        """Actions with no successors."""
        return tuple(a for a in self.actions if not self._successors[a])

    def _require(self, action: Action) -> None:
        if action not in self._successors:
            raise GraphError(f"unknown action {action!r}")

    # ------------------------------------------------------------------
    # traversals
    # ------------------------------------------------------------------

    def topological_order(self, priority: Callable[[Action], object] | None = None) -> list[Action]:
        """A topological order of the actions (Kahn's algorithm).

        ``priority`` breaks ties between simultaneously-ready actions
        (smaller priority value first); by default the vocabulary order
        is used, making the result deterministic.  This is the engine
        behind EDF scheduling: pass the deadline as the priority.
        """
        rank = {a: i for i, a in enumerate(self.actions)}
        if priority is None:
            key: Callable[[Action], object] = lambda a: rank[a]
        else:
            key = lambda a: (priority(a), rank[a])

        indegree = {a: len(self._predecessors[a]) for a in self.actions}
        ready = sorted((a for a in self.actions if indegree[a] == 0), key=key)
        order: list[Action] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            changed = False
            for nxt in self._successors[current]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
                    changed = True
            if changed:
                ready.sort(key=key)
        return order

    def is_execution_sequence(self, sequence: Sequence[Action]) -> bool:
        """Check the execution-sequence condition of section 2.1.

        A sequence of *distinct* actions is an execution sequence when
        the induced order is compatible with the precedence relation and
        every prefix is predecessor-closed: an action may appear only
        after all of its predecessors.
        """
        seen: set[Action] = set()
        for action in sequence:
            if action not in self._successors:
                return False
            if action in seen:
                return False
            if any(p not in seen for p in self._predecessors[action]):
                return False
            seen.add(action)
        return True

    def validate_execution_sequence(self, sequence: Sequence[Action]) -> None:
        """Like :meth:`is_execution_sequence` but raises with a diagnosis."""
        seen: set[Action] = set()
        for position, action in enumerate(sequence):
            if action not in self._successors:
                raise SequenceError(f"position {position}: unknown action {action!r}")
            if action in seen:
                raise SequenceError(f"position {position}: action {action!r} repeated")
            missing = [p for p in self._predecessors[action] if p not in seen]
            if missing:
                raise SequenceError(
                    f"position {position}: action {action!r} runs before "
                    f"predecessor(s) {missing}"
                )
            seen.add(action)

    def is_schedule(self, sequence: Sequence[Action]) -> bool:
        """A *schedule* is an execution sequence where every action occurs."""
        return len(sequence) == len(self.actions) and self.is_execution_sequence(sequence)

    def ancestors(self, action: Action) -> frozenset[Action]:
        """All transitive predecessors of ``action``."""
        self._require(action)
        found: set[Action] = set()
        frontier = deque(self._predecessors[action])
        while frontier:
            current = frontier.popleft()
            if current in found:
                continue
            found.add(current)
            frontier.extend(self._predecessors[current])
        return frozenset(found)

    def descendants(self, action: Action) -> frozenset[Action]:
        """All transitive successors of ``action``."""
        self._require(action)
        found: set[Action] = set()
        frontier = deque(self._successors[action])
        while frontier:
            current = frontier.popleft()
            if current in found:
                continue
            found.add(current)
            frontier.extend(self._successors[current])
        return frozenset(found)

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------

    def unfold(self, iterations: int, serialize: bool = True) -> "PrecedenceGraph":
        """Unfold this graph as the body of a loop executed ``iterations`` times.

        Every action ``a`` becomes ``a#k`` for ``k in 0..iterations-1``
        with the body's edges replicated per iteration.  When
        ``serialize`` is true (the paper's single-threaded setting),
        iteration ``k`` must fully precede iteration ``k+1``: edges are
        added from the sinks of iteration ``k`` to the sources of
        iteration ``k+1``.
        """
        if iterations <= 0:
            raise GraphError(f"iterations must be positive, got {iterations}")
        actions: list[Action] = []
        edges: set[tuple[Action, Action]] = set()
        for k in range(iterations):
            actions.extend(iterated_action(a, k) for a in self.actions)
            edges.update(
                (iterated_action(a, k), iterated_action(b, k)) for a, b in self.edges
            )
            if serialize and k > 0:
                for sink in self.sinks():
                    for source in self.sources():
                        edges.add((iterated_action(sink, k - 1), iterated_action(source, k)))
        return PrecedenceGraph(tuple(actions), frozenset(edges))

    def restricted_to(self, keep: Iterable[Action]) -> "PrecedenceGraph":
        """The induced subgraph on ``keep`` (transitive edges are *not* added)."""
        kept = [a for a in self.actions if a in set(keep)]
        kept_set = set(kept)
        edges = frozenset((a, b) for a, b in self.edges if a in kept_set and b in kept_set)
        return PrecedenceGraph(tuple(kept), edges)
