"""Execution sequences and cumulative-time arithmetic (section 2.1).

The paper extends execution-time and deadline functions to sequences:
for an execution sequence ``alpha`` of length ``n``,

* ``C(alpha) = C(alpha(1)), ..., C(alpha(n))`` is the sequence of the
  execution times of its elements,
* ``sigma-hat`` denotes cumulative sums:
  ``sigma_hat(i) = sum_{j<=i} sigma(j)``,
* ``min(sigma)`` is the minimum element.

Positions are 1-based in the paper; this module keeps Python's 0-based
indexing internally but mirrors the paper's operators exactly.  The
sequence utilities here are deliberately dependency-free (pure Python
lists) — they are the *reference* semantics against which the
numpy-accelerated table implementations are tested.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.action import Action

#: A time value: non-negative float; ``float("inf")`` models +infinity.
Time = float

INFINITY: Time = float("inf")


def cumulative(values: Sequence[Time]) -> list[Time]:
    """The paper's hat operator: ``sigma_hat(i) = sum_{j<=i} sigma(j)``.

    >>> cumulative([1.0, 2.0, 3.0])
    [1.0, 3.0, 6.0]
    """
    total = 0.0
    out: list[Time] = []
    for value in values:
        total += value
        out.append(total)
    return out


def pointwise_difference(left: Sequence[Time], right: Sequence[Time]) -> list[Time]:
    """Element-wise ``left - right`` (used for ``D(alpha) - C_hat(alpha)``)."""
    if len(left) != len(right):
        raise ValueError(f"length mismatch: {len(left)} vs {len(right)}")
    return [l - r for l, r in zip(left, right)]


def sequence_times(
    sequence: Sequence[Action], time_of: Callable[[Action], Time]
) -> list[Time]:
    """Extend a time function to a sequence: ``C(alpha)`` (section 2.1)."""
    return [time_of(action) for action in sequence]


def minimum(values: Sequence[Time]) -> Time:
    """``min(sigma)``; the minimum over an empty sequence is +infinity.

    The empty-sequence convention makes the feasibility predicate
    ``min(D(alpha) - C_hat(alpha)) >= 0`` vacuously true for empty
    suffixes, matching the paper's constraint semantics at the last
    control location.
    """
    return min(values) if values else INFINITY


def suffix(sequence: Sequence[Action], start: int) -> list[Action]:
    """The paper's ``alpha[i+1, n]`` suffix for a 0-based ``start`` index.

    ``suffix(alpha, i)`` returns the actions at 0-based positions
    ``i, i+1, ..., n-1`` — i.e. everything not yet executed when the
    control location is ``i``.
    """
    if start < 0:
        raise ValueError(f"suffix start must be >= 0, got {start}")
    return list(sequence[start:])


def prefixes_agree(
    first: Sequence[Action], second: Sequence[Action], length: int
) -> bool:
    """Do two sequences share the same prefix of the given length?

    Successive controller pairs ``(alpha_i, theta_i)`` and
    ``(alpha_{i+1}, theta_{i+1})`` must be *compatible*: their prefixes
    of length ``i`` agree (section 2.2).
    """
    if length > min(len(first), len(second)):
        return False
    return list(first[:length]) == list(second[:length])
