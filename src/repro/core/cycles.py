"""Cyclic (iterated) systems — section 3's ``body x N`` construction.

The MPEG-4 encoder treats a frame as ``N`` iterations of the macroblock
body (Fig. 2).  The prototype tool takes the body graph ``G`` and its
iteration parameter ``N`` and works on the unfolded graph.  This module
packages that construction: body graph + per-body-action timing tables
+ a deadline pattern over the whole cycle become a full
:class:`~repro.core.system.ParameterizedSystem`.

Timing tables are defined on *base* action names; the unfolded
instances ``a#k`` resolve to them automatically (see
:class:`repro.core.timing.QualityTimeTable`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.action import QualitySet, iterated_action
from repro.core.deadlines import (
    DeadlineFunction,
    QualityDeadlineTable,
    linear_iteration_deadlines,
)
from repro.core.precedence import PrecedenceGraph
from repro.core.sequences import Time
from repro.core.system import ParameterizedSystem
from repro.core.timing import QualityTimeTable
from repro.errors import ConfigurationError

#: Supported per-cycle deadline patterns.
DEADLINE_PATTERNS = ("uniform", "linear")


@dataclass(frozen=True)
class CyclicApplication:
    """An application that runs an iterated body once per cycle.

    Attributes
    ----------
    body:
        The precedence graph of one iteration (e.g. one macroblock).
    iterations:
        How many times the body runs per cycle (``N``).
    quality_set, average_times, worst_times:
        Timing model on *body* action names.
    """

    body: PrecedenceGraph
    iterations: int
    quality_set: QualitySet
    average_times: QualityTimeTable
    worst_times: QualityTimeTable

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError(f"iterations must be positive, got {self.iterations}")
        QualityTimeTable.validate_bounds(self.average_times, self.worst_times)

    @property
    def actions_per_cycle(self) -> int:
        return len(self.body) * self.iterations

    def unfolded_graph(self) -> PrecedenceGraph:
        """The cycle's full precedence graph (iterations serialized)."""
        return self.body.unfold(self.iterations, serialize=True)

    def deadline_table(
        self, budget: Time, pattern: str = "uniform", slack_fraction: float = 0.1
    ) -> QualityDeadlineTable:
        """Deadlines over the unfolded actions for one cycle of ``budget``.

        ``uniform``: every action must finish by ``budget`` (the frame's
        time budget — the paper's MPEG-4 setting).
        ``linear``: iteration ``k`` paced at ``(k+1)/N * budget`` plus a
        slack band (keeps quality smooth across the cycle).
        """
        if pattern not in DEADLINE_PATTERNS:
            raise ConfigurationError(
                f"pattern must be one of {DEADLINE_PATTERNS}, got {pattern!r}"
            )
        if pattern == "uniform":
            graph = self.unfolded_graph()
            deadline = DeadlineFunction.uniform(graph.actions, budget)
        else:
            deadline = linear_iteration_deadlines(
                self.body.actions, self.iterations, budget, slack_fraction
            )
        return QualityDeadlineTable.quality_independent(self.quality_set, deadline)

    def system(
        self, budget: Time, pattern: str = "uniform", slack_fraction: float = 0.1
    ) -> ParameterizedSystem:
        """The parameterized real-time system for one cycle."""
        return ParameterizedSystem(
            graph=self.unfolded_graph(),
            quality_set=self.quality_set,
            average_times=self.average_times,
            worst_times=self.worst_times,
            deadlines=self.deadline_table(budget, pattern, slack_fraction),
        )

    # ------------------------------------------------------------------
    # loads — used for calibration and admission checks
    # ------------------------------------------------------------------

    def average_cycle_load(self, quality: int) -> Time:
        """Expected cycle time when every action runs at ``quality``."""
        per_body = sum(
            self.average_times.time(a, quality) for a in self.body.actions
        )
        return per_body * self.iterations

    def worst_cycle_load(self, quality: int) -> Time:
        """Worst-case cycle time when every action runs at ``quality``."""
        per_body = sum(self.worst_times.time(a, quality) for a in self.body.actions)
        return per_body * self.iterations

    def max_sustainable_quality(self, budget: Time, worst_case: bool = False) -> int:
        """Largest constant level whose (average or worst-case) cycle load
        fits the budget — the classic static design point."""
        load = self.worst_cycle_load if worst_case else self.average_cycle_load
        best = None
        for q in self.quality_set:
            if load(q) <= budget:
                best = q
        if best is None:
            raise ConfigurationError(
                f"no quality level fits budget {budget} "
                f"(minimum load {load(self.quality_set.qmin)})"
            )
        return best

    def positions_of(self, action: str) -> list[int]:
        """Schedule positions of a body action's instances in vocabulary
        order of the unfolded graph (iteration-major)."""
        graph = self.unfolded_graph()
        wanted = {iterated_action(action, k) for k in range(self.iterations)}
        return [i for i, a in enumerate(graph.actions) if a in wanted]
