"""Parameterized real-time systems (Definition 2.3) and problem validation.

A parameterized real-time system bundles:

* a precedence graph ``G``,
* a finite quality set ``Q``,
* per-quality average and worst-case execution-time tables
  (``Cav_q <= Cwc_q``, non-decreasing in ``q``),
* per-quality deadline functions ``D_q``.

The control problem of section 2.1 is well-posed only when the set of
feasible schedules with respect to ``Cwc_qmin`` and ``D_qmin`` is
non-empty; :meth:`ParameterizedSystem.validate` checks this by testing
the EDF schedule (EDF optimality: if EDF at qmin misses a deadline, no
schedule meets them all).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.action import Action, QualitySet
from repro.core.deadlines import DeadlineFunction, QualityDeadlineTable
from repro.core.edf import edf_schedule
from repro.core.feasibility import check_feasibility
from repro.core.precedence import PrecedenceGraph
from repro.core.sequences import Time
from repro.core.timing import QualityTimeTable
from repro.errors import InfeasibleError, TimingError


@dataclass(frozen=True)
class ParameterizedSystem:
    """The tuple ``(G, Q, {Cav_q}, {Cwc_q}, {D_q})`` of Definition 2.3."""

    graph: PrecedenceGraph
    quality_set: QualitySet
    average_times: QualityTimeTable
    worst_times: QualityTimeTable
    deadlines: QualityDeadlineTable

    def __post_init__(self) -> None:
        if tuple(self.average_times.quality_set) != tuple(self.quality_set):
            raise TimingError("average-time table quality set differs from system Q")
        if tuple(self.worst_times.quality_set) != tuple(self.quality_set):
            raise TimingError("worst-case table quality set differs from system Q")
        if tuple(self.deadlines.quality_set) != tuple(self.quality_set):
            raise TimingError("deadline table quality set differs from system Q")
        QualityTimeTable.validate_bounds(self.average_times, self.worst_times)
        # Every graph action must have timings at every level (tables may
        # be defined on base names of unfolded instances).
        for action in self.graph.actions:
            for q in (self.quality_set.qmin, self.quality_set.qmax):
                self.average_times.time(action, q)
                self.worst_times.time(action, q)
                self.deadlines.deadline(action, q)

    @property
    def qmin(self) -> int:
        return self.quality_set.qmin

    @property
    def qmax(self) -> int:
        return self.quality_set.qmax

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    def cav(self, quality: int) -> Callable[[Action], Time]:
        """``Cav_q`` as a callable."""
        return self.average_times.at_quality(quality)

    def cwc(self, quality: int) -> Callable[[Action], Time]:
        """``Cwc_q`` as a callable."""
        return self.worst_times.at_quality(quality)

    def deadline_at(self, quality: int) -> DeadlineFunction:
        """``D_q``."""
        return self.deadlines.at_quality(quality)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def baseline_schedule(self) -> list[Action]:
        """The EDF schedule at minimum quality — the safety fallback order."""
        return edf_schedule(self.graph, self.deadline_at(self.qmin))

    def validate(self) -> list[Action]:
        """Check the Problem's precondition and return the qmin EDF schedule.

        Raises :class:`InfeasibleError` when even the EDF schedule at
        minimum quality, under worst-case times, misses a deadline —
        in that case no controller can guarantee safety.
        """
        schedule = self.baseline_schedule()
        report = check_feasibility(
            schedule, self.cwc(self.qmin), self.deadline_at(self.qmin)
        )
        if not report.feasible:
            position = report.first_violation
            action = schedule[position] if position is not None else None
            raise InfeasibleError(
                "no feasible schedule at minimum quality: EDF misses the "
                f"deadline of {action!r} (slack {report.worst_slack})"
            )
        return schedule

    def is_valid(self) -> bool:
        """Non-raising version of :meth:`validate`."""
        try:
            self.validate()
        except InfeasibleError:
            return False
        return True

    def supports_precomputed_schedule(self) -> bool:
        """The prototype-tool condition: deadline order independent of q."""
        return self.deadlines.order_is_quality_independent(self.graph.actions)

    def with_deadlines(self, deadlines: QualityDeadlineTable) -> "ParameterizedSystem":
        """A copy of this system with different deadline requirements."""
        return ParameterizedSystem(
            graph=self.graph,
            quality_set=self.quality_set,
            average_times=self.average_times,
            worst_times=self.worst_times,
            deadlines=deadlines,
        )

    def with_uniform_deadline(self, budget: Time) -> "ParameterizedSystem":
        """Same system with a single end-of-cycle deadline ``budget``."""
        deadline = DeadlineFunction.uniform(self.graph.actions, budget)
        return self.with_deadlines(
            QualityDeadlineTable.quality_independent(self.quality_set, deadline)
        )
