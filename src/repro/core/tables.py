"""Pre-computed controller tables — the prototype tool's artifact (section 3).

The paper's tool generates, besides the EDF schedule, "tables containing
pre-computed values used by the controller for the computation of
``Qual_Const_av`` and ``Qual_Const_wc``".  This module derives them.

Applicability (the tool's stated condition): the order between
deadlines is independent of the quality.  Then one EDF schedule
``alpha`` is optimal for every quality assignment, ``Best_Sched`` always
returns it, and both constraints reduce to comparing the elapsed time
``t`` against a per-(location, quality) *slack bound*:

* average constraint at location ``i`` with every remaining action at
  quality ``q``::

      Qual_Const_av  <=>  t <= AV[i][q]
      AV[i][q] = min_{j >= i} ( D_q(alpha(j)) - sum_{k=i..j} Cav_q(alpha(k)) )
               = suffix_min_j ( D_q(alpha(j)) - cumsum_q[j] ) + cumsum_q[i-1]

* worst-case (safety) constraint — next action at ``q``, landing path at
  ``qmin``::

      Qual_Const_wc  <=>  t <= WC[i][q]
      WC[i][q] = min( D_q(alpha(i)),
                      suffix_min_{j >= i+1}( D_qmin(alpha(j)) - wcsum[j] ) + wcsum[i]
                    ) - Cwc_q(alpha(i))

All suffix minima are materialized once with numpy (O(n |Q|) memory,
O(n |Q|) build time); each runtime decision is then O(|Q|) lookups —
this is what keeps the measured controller overhead in the paper below
1.5 % of the runtime.

A per-cycle *shift* argument supports re-arming the same tables when all
deadlines move by a constant (the per-frame budget ``arrival + K*P``
changing with buffer occupancy): shifting every deadline by ``delta``
shifts every slack bound by ``delta``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.action import Action
from repro.core.sequences import Time
from repro.core.system import ParameterizedSystem
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ControllerTables:
    """Slack-bound tables over (control location, quality level).

    Attributes
    ----------
    schedule:
        The fixed EDF schedule ``alpha`` the tables were computed for.
    qualities:
        Quality levels in increasing order (column order of the tables).
    average_bound:
        ``AV[i][q_idx]`` — ``Qual_Const_av`` holds iff ``t <= AV + shift``.
    worst_bound:
        ``WC[i][q_idx]`` — ``Qual_Const_wc`` holds iff ``t <= WC + shift``.
    combined_bound:
        ``min(AV, WC)`` — the paper's full ``Qual_Const``.
    """

    schedule: tuple[Action, ...]
    qualities: tuple[int, ...]
    average_bound: np.ndarray
    worst_bound: np.ndarray
    combined_bound: np.ndarray

    def __post_init__(self) -> None:
        n, m = self.average_bound.shape
        if n != len(self.schedule) or m != len(self.qualities):
            raise ConfigurationError("table shape does not match schedule/qualities")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_system(
        cls, system: ParameterizedSystem, schedule: list[Action] | None = None
    ) -> "ControllerTables":
        """Build the tables for a system with quality-independent deadline order."""
        if not system.supports_precomputed_schedule():
            raise ConfigurationError(
                "pre-computed controller tables require the deadline order "
                "to be independent of the quality level (prototype-tool "
                "condition, section 3)"
            )
        alpha = tuple(schedule if schedule is not None else system.baseline_schedule())
        if not system.graph.is_schedule(alpha):
            raise ConfigurationError("provided schedule is not a schedule of the graph")
        qualities = tuple(system.quality_set)
        n = len(alpha)
        qmin = system.qmin

        average_bound = np.empty((n, len(qualities)), dtype=np.float64)
        worst_bound = np.empty((n, len(qualities)), dtype=np.float64)

        # Safety landing path: worst-case times at qmin along the suffix.
        cwc_min = np.array([system.worst_times.time(a, qmin) for a in alpha])
        d_min = np.array([system.deadlines.deadline(a, qmin) for a in alpha])
        wcsum = np.cumsum(cwc_min)  # wcsum[j] = sum_{k<=j} Cwc_qmin
        # Mwc[i] = min_{j >= i} (D_qmin(j) - wcsum[j]); Mwc[n] = +inf.
        margins = d_min - wcsum
        suffix_min_wc = np.empty(n + 1, dtype=np.float64)
        suffix_min_wc[n] = np.inf
        suffix_min_wc[:n] = np.minimum.accumulate(margins[::-1])[::-1]

        for column, q in enumerate(qualities):
            cav_q = np.array([system.average_times.time(a, q) for a in alpha])
            cwc_q = np.array([system.worst_times.time(a, q) for a in alpha])
            d_q = np.array([system.deadlines.deadline(a, q) for a in alpha])

            cumsum_q = np.cumsum(cav_q)
            margins_q = d_q - cumsum_q
            suffix_min_av = np.minimum.accumulate(margins_q[::-1])[::-1]
            # exclusive prefix sums: cumsum_q[i-1], 0 at i = 0
            exclusive = np.concatenate(([0.0], cumsum_q[:-1]))
            average_bound[:, column] = suffix_min_av + exclusive

            # suffix over j >= i+1 of (D_qmin(j) - (wcsum[j] - wcsum[i]))
            #     = suffix_min_wc[i+1] + wcsum[i]
            # (wcsum[i] is inclusive of position i, which only serves to
            # rebase sums that start at i+1 — position i itself is
            # charged Cwc_q below, outside the landing path).
            landing = np.minimum(d_q, suffix_min_wc[1:] + wcsum)
            worst_bound[:, column] = landing - cwc_q

        combined = np.minimum(average_bound, worst_bound)
        return cls(
            schedule=alpha,
            qualities=qualities,
            average_bound=average_bound,
            worst_bound=worst_bound,
            combined_bound=combined,
        )

    # ------------------------------------------------------------------
    # runtime queries
    # ------------------------------------------------------------------

    def _mode_table(self, mode: str) -> np.ndarray:
        if mode == "both":
            return self.combined_bound
        if mode == "average":
            return self.average_bound
        if mode == "worst":
            return self.worst_bound
        raise ConfigurationError(f"unknown constraint mode {mode!r}")

    def feasible_qualities(
        self, position: int, elapsed: Time, shift: Time = 0.0, mode: str = "both"
    ) -> tuple[int, ...]:
        """All levels whose constraint holds at this location and time."""
        row = self._mode_table(mode)[position]
        return tuple(
            q for column, q in enumerate(self.qualities) if elapsed <= row[column] + shift
        )

    def max_feasible_quality(
        self, position: int, elapsed: Time, shift: Time = 0.0, mode: str = "both"
    ) -> int | None:
        """``qM`` — the maximal constraint-satisfying level, or None.

        O(|Q|) reverse scan; this is the operation the generated
        controller performs at every action boundary.
        """
        row = self._mode_table(mode)[position]
        for column in range(len(self.qualities) - 1, -1, -1):
            if elapsed <= row[column] + shift:
                return self.qualities[column]
        return None

    def slack(
        self, position: int, quality: int, shift: Time = 0.0, mode: str = "both"
    ) -> Time:
        """Remaining slack bound for one (location, quality)."""
        column = self.qualities.index(quality)
        return float(self._mode_table(mode)[position][column] + shift)

    # ------------------------------------------------------------------
    # footprint (for the overhead model)
    # ------------------------------------------------------------------

    def memory_bytes(self, cell_bytes: int = 4) -> int:
        """Size of the embedded table image.

        The generated C controller stores the two bound tables as
        fixed-point cycle counts (``cell_bytes`` per entry, default
        int32) — this number feeds the paper's <=1 % memory-overhead
        measurement.
        """
        cells = self.average_bound.size + self.worst_bound.size
        return cells * cell_bytes


@dataclass(frozen=True)
class CompressedPeriodicTables:
    """Affine compression of the tables of an iterated (cyclic) body.

    For a body of ``b`` actions iterated ``N`` times with per-iteration
    (or uniform) deadlines, the slack bound at position ``i = k*b + j``
    is *affine in the iteration index k* for every body offset ``j`` —
    each further iteration consumes a fixed average/worst-case load and
    relaxes (or keeps) deadlines by a fixed pace.  The paper's tool
    stores exactly such compact pre-computed values; materializing all
    ``9 x N`` rows would blow its <=1 % memory budget.

    Representation: iteration-0 rows, the per-(offset, quality) step
    between consecutive iterations, and the final iteration verbatim
    (the landing rows touch the end-of-cycle boundary and break the
    affine pattern).  Construction *verifies* the affine property
    against the full tables; with integer cycle inputs (as in Fig. 5)
    the reconstruction is bit-exact.
    """

    body_length: int
    iterations: int
    qualities: tuple[int, ...]
    first_average: np.ndarray
    first_worst: np.ndarray
    step_average: np.ndarray
    step_worst: np.ndarray
    last_average: np.ndarray
    last_worst: np.ndarray

    @classmethod
    def from_tables(
        cls, tables: ControllerTables, body_length: int
    ) -> "CompressedPeriodicTables":
        """Compress full tables; raises if the affine property fails."""
        n = len(tables.schedule)
        if body_length <= 0 or n % body_length != 0:
            raise ConfigurationError(
                f"body length {body_length} does not divide schedule length {n}"
            )
        iterations = n // body_length
        shape = (iterations, body_length, len(tables.qualities))
        average = tables.average_bound.reshape(shape)
        worst = tables.worst_bound.reshape(shape)
        if iterations == 1:
            step_av = np.zeros_like(average[0])
            step_wc = np.zeros_like(worst[0])
        else:
            step_av = average[1] - average[0]
            step_wc = worst[1] - worst[0]
            # verify affinity on every iteration except the last
            for k in range(iterations - 1):
                if not np.array_equal(average[k], average[0] + k * step_av):
                    raise ConfigurationError(
                        f"average bounds are not affine in the iteration "
                        f"index (offset iteration {k})"
                    )
                if not np.array_equal(worst[k], worst[0] + k * step_wc):
                    raise ConfigurationError(
                        f"worst-case bounds are not affine in the iteration "
                        f"index (offset iteration {k})"
                    )
        return cls(
            body_length=body_length,
            iterations=iterations,
            qualities=tables.qualities,
            first_average=average[0].copy(),
            first_worst=worst[0].copy(),
            step_average=step_av,
            step_worst=step_wc,
            last_average=average[-1].copy(),
            last_worst=worst[-1].copy(),
        )

    def average_bound_at(self, position: int, quality: int) -> float:
        return self._bound(position, quality, self.first_average,
                           self.step_average, self.last_average)

    def worst_bound_at(self, position: int, quality: int) -> float:
        return self._bound(position, quality, self.first_worst,
                           self.step_worst, self.last_worst)

    def combined_bound_at(self, position: int, quality: int) -> float:
        return min(
            self.average_bound_at(position, quality),
            self.worst_bound_at(position, quality),
        )

    def _bound(self, position, quality, first, step, last) -> float:
        iteration, offset = divmod(position, self.body_length)
        if iteration >= self.iterations or iteration < 0:
            raise ConfigurationError(f"position {position} out of range")
        column = self.qualities.index(quality)
        if iteration == self.iterations - 1:
            return float(last[offset, column])
        return float(first[offset, column] + iteration * step[offset, column])

    def memory_bytes(self, cell_bytes: int = 4) -> int:
        """Embedded size of the compressed representation."""
        cells = (
            self.first_average.size
            + self.first_worst.size
            + self.step_average.size
            + self.step_worst.size
            + self.last_average.size
            + self.last_worst.size
        )
        return cells * cell_bytes
