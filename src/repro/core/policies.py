"""Quality-manager selection policies.

The paper's quality manager picks the *maximal* quality satisfying
``Qual_Const`` — that is what makes the control policy optimal (best
quality within the budget).  Section 4 mentions two refinements this
module also provides:

* soft deadlines — only the average constraint applies (a *constraint
  mode* on the controller, see
  :class:`repro.core.controller.ReferenceController`);
* smoothness — "specific conditions guaranteeing smoothness in terms of
  variations of quality levels": implemented here as selection policies
  that bound or damp quality changes between consecutive decisions.

A policy receives the set of constraint-satisfying qualities (always
non-empty in a validated system) and the previous decision, and returns
the level to run.  Policies must pick *within* the feasible set, so
every policy inherits the controller's safety guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.core.action import QualitySet
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DecisionContext:
    """Information available to a selection policy at one control location."""

    step: int
    previous_quality: int | None
    quality_set: QualitySet


class QualityPolicy(Protocol):
    """Strategy interface for the quality manager's final selection."""

    def select(self, feasible: Sequence[int], context: DecisionContext) -> int:
        """Pick a quality from ``feasible`` (sorted increasing, non-empty)."""
        ...


class MaximalQualityPolicy:
    """The paper's policy: ``qM = max{ q | Qual_Const(...) }``."""

    def select(self, feasible: Sequence[int], context: DecisionContext) -> int:
        return feasible[-1]

    def __repr__(self) -> str:
        return "MaximalQualityPolicy()"


class BoundedStepPolicy:
    """Maximal quality, but never further than ``max_step`` levels from
    the previous decision.

    This is the simplest smoothness condition: quality ramps instead of
    jumping, which avoids visible oscillation in encoded video.  The
    bound applies in both directions *except* downwards when safety
    requires a larger drop — the feasible set already encodes safety, so
    the policy clamps to the best feasible level within the band, or the
    highest feasible level below the band when the band is empty.
    """

    def __init__(self, max_step: int = 1):
        if max_step < 1:
            raise ConfigurationError(f"max_step must be >= 1, got {max_step}")
        self.max_step = max_step

    def select(self, feasible: Sequence[int], context: DecisionContext) -> int:
        best = feasible[-1]
        previous = context.previous_quality
        if previous is None:
            return best
        ranks = context.quality_set.levels
        previous_rank = ranks.index(previous)
        low = previous_rank - self.max_step
        high = previous_rank + self.max_step
        banded = [q for q in feasible if low <= ranks.index(q) <= high]
        if banded:
            return banded[-1]
        # Safety forced a drop below the band: take the closest feasible.
        below = [q for q in feasible if ranks.index(q) < low]
        if below:
            return below[-1]
        return feasible[0]

    def __repr__(self) -> str:
        return f"BoundedStepPolicy(max_step={self.max_step})"


class HysteresisPolicy:
    """Maximal quality with an upgrade debounce.

    Downgrades (forced by the constraints) are immediate, but an
    upgrade is taken only after the higher level has been feasible for
    ``patience`` consecutive decisions.  This suppresses chattering when
    the load sits right at a quality boundary.
    """

    def __init__(self, patience: int = 2):
        if patience < 1:
            raise ConfigurationError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self._pending_upgrade: int | None = None
        self._pending_count = 0

    def reset(self) -> None:
        self._pending_upgrade = None
        self._pending_count = 0

    def select(self, feasible: Sequence[int], context: DecisionContext) -> int:
        best = feasible[-1]
        previous = context.previous_quality
        if previous is None:
            return best
        if best <= previous:
            self._pending_upgrade = None
            self._pending_count = 0
            if previous in feasible:
                return previous
            return best
        # best > previous: debounce the upgrade.
        if self._pending_upgrade is not None and best >= self._pending_upgrade:
            self._pending_count += 1
        else:
            self._pending_upgrade = best
            self._pending_count = 1
        if self._pending_count >= self.patience:
            self._pending_upgrade = None
            self._pending_count = 0
            return best
        if previous in feasible:
            return previous
        return max(q for q in feasible if q <= previous)

    def __repr__(self) -> str:
        return f"HysteresisPolicy(patience={self.patience})"


class FixedQualityPolicy:
    """Always request the same level (clamped into the feasible set).

    Used to express the constant-quality industrial baseline through the
    same controller machinery in ablation studies; the stand-alone
    baseline in :mod:`repro.baselines.constant` bypasses constraints
    entirely, as real constant-quality encoders do.
    """

    def __init__(self, quality: int):
        self.quality = quality

    def select(self, feasible: Sequence[int], context: DecisionContext) -> int:
        if self.quality in feasible:
            return self.quality
        lower = [q for q in feasible if q < self.quality]
        if lower:
            return lower[-1]
        return feasible[0]

    def __repr__(self) -> str:
        return f"FixedQualityPolicy(quality={self.quality})"
