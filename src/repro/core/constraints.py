"""The quality constraints ``Qual_Const_av`` / ``Qual_Const_wc`` (section 2.2).

At control location ``i`` (``i`` actions of the schedule ``alpha``
executed, actual elapsed time ``t = C_hat(alpha)(i)``), a candidate
quality assignment ``theta`` is acceptable when *both* predicates hold:

``Qual_Const_av(alpha, theta, t, i)``::

    t <= min( D_theta(alpha[i+1, n]) - Cav_theta_hat(alpha[i+1, n]) )

every remaining action, executed at its assigned quality with *average*
times, meets its deadline — this is the optimality constraint that lets
the controller fill the time budget in expectation.

``Qual_Const_wc(alpha, theta, t, i)``::

    t <= min( D_theta'(alpha[i+1, n]) - Cwc_theta'_hat(alpha[i+1, n]) )

where ``theta'`` agrees with ``theta`` on the *next* action
(``alpha(i+1)``) and maps every later action to ``qmin`` — even if the
next action consumes its *worst-case* time, a worst-case landing path at
minimum quality still meets every deadline.  This is the safety
constraint that makes deadline misses impossible whenever actual times
respect ``C <= Cwc_theta``.

The functions in this module are the *reference* implementation:
straight transliterations of the formulas, evaluated by walking the
suffix.  The table-driven controller (:mod:`repro.core.tables`) must
agree with them exactly; tests enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.action import Action
from repro.core.deadlines import QualityDeadlineTable
from repro.core.sequences import INFINITY, Time
from repro.core.timing import QualityAssignment, QualityTimeTable


def average_constraint_slack(
    sequence: Sequence[Action],
    assignment: QualityAssignment,
    average_times: QualityTimeTable,
    deadlines: QualityDeadlineTable,
    position: int,
) -> Time:
    """``min(D_theta - Cav_theta_hat)`` over the suffix from ``position``.

    ``position`` is 0-based: the suffix contains the actions not yet
    executed (``alpha[i+1, n]`` in the paper's 1-based notation).
    Returns +inf for an empty suffix.  ``Qual_Const_av`` holds iff
    ``t <= average_constraint_slack(...)``.
    """
    slack = INFINITY
    consumed = 0.0
    for action in sequence[position:]:
        q = assignment(action)
        consumed += average_times.time(action, q)
        slack = min(slack, deadlines.deadline(action, q) - consumed)
    return slack


def worst_case_constraint_slack(
    sequence: Sequence[Action],
    assignment: QualityAssignment,
    worst_times: QualityTimeTable,
    deadlines: QualityDeadlineTable,
    position: int,
    qmin: int,
) -> Time:
    """``min(D_theta' - Cwc_theta'_hat)`` over the suffix from ``position``.

    ``theta'`` keeps ``theta``'s quality for the first suffix action and
    assigns ``qmin`` to every later one (the paper's safety fallback).
    ``Qual_Const_wc`` holds iff ``t <= worst_case_constraint_slack(...)``.
    """
    slack = INFINITY
    consumed = 0.0
    for offset, action in enumerate(sequence[position:]):
        q = assignment(action) if offset == 0 else qmin
        consumed += worst_times.time(action, q)
        slack = min(slack, deadlines.deadline(action, q) - consumed)
    return slack


def qual_const_av(
    sequence: Sequence[Action],
    assignment: QualityAssignment,
    average_times: QualityTimeTable,
    deadlines: QualityDeadlineTable,
    elapsed: Time,
    position: int,
) -> bool:
    """The predicate ``Qual_Const_av(alpha, theta, t, i)``."""
    return elapsed <= average_constraint_slack(
        sequence, assignment, average_times, deadlines, position
    )


def qual_const_wc(
    sequence: Sequence[Action],
    assignment: QualityAssignment,
    worst_times: QualityTimeTable,
    deadlines: QualityDeadlineTable,
    elapsed: Time,
    position: int,
    qmin: int,
) -> bool:
    """The predicate ``Qual_Const_wc(alpha, theta, t, i)``."""
    return elapsed <= worst_case_constraint_slack(
        sequence, assignment, worst_times, deadlines, position, qmin
    )


@dataclass(frozen=True)
class ConstraintEvaluation:
    """Both constraint slacks for one candidate assignment at a location."""

    average_slack: Time
    worst_case_slack: Time

    @property
    def combined_slack(self) -> Time:
        return min(self.average_slack, self.worst_case_slack)

    def satisfied(self, elapsed: Time, mode: str = "both") -> bool:
        """Evaluate ``Qual_Const`` under a constraint mode.

        ``"both"`` is the paper's hard-deadline predicate; ``"average"``
        is the soft-deadline variant of section 4 (the quality manager
        applies only the average constraint); ``"worst"`` keeps only the
        safety half (a degenerate, overly conservative mode used in the
        ablation benches).
        """
        if mode == "both":
            return elapsed <= self.combined_slack
        if mode == "average":
            return elapsed <= self.average_slack
        if mode == "worst":
            return elapsed <= self.worst_case_slack
        raise ValueError(f"unknown constraint mode {mode!r}")


def evaluate_constraints(
    sequence: Sequence[Action],
    assignment: QualityAssignment,
    average_times: QualityTimeTable,
    worst_times: QualityTimeTable,
    deadlines: QualityDeadlineTable,
    position: int,
    qmin: int,
) -> ConstraintEvaluation:
    """Evaluate both constraint slacks (reference implementation)."""
    return ConstraintEvaluation(
        average_slack=average_constraint_slack(
            sequence, assignment, average_times, deadlines, position
        ),
        worst_case_slack=worst_case_constraint_slack(
            sequence, assignment, worst_times, deadlines, position, qmin
        ),
    )
