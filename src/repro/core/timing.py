"""Execution-time functions and quality assignments (Definitions 2.1/2.3).

A *parameterized* real-time system carries, per quality level ``q``, an
average execution-time function ``Cav_q`` and a worst-case function
``Cwc_q`` with ``Cav_q <= Cwc_q``, both non-decreasing in ``q``.

A *quality assignment* ``theta : A -> Q`` selects one level per action;
for a family ``{X_q}`` of time functions, ``X_theta(a) = X_theta(a)(a)``.

This module provides:

* :class:`TimeFunction` — a concrete ``C : A -> R+ u {+inf}``,
* :class:`QualityTimeTable` — the family ``{C_q}_{q in Q}`` with
  monotonicity validation,
* :class:`QualityAssignment` — ``theta`` plus the ``theta |>i q``
  update operator used by the quality manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.action import Action, QualitySet, split_iterated_action
from repro.core.sequences import INFINITY, Time
from repro.errors import TimingError


@dataclass(frozen=True)
class TimeFunction:
    """A total map from actions to times, ``C : A -> R+ u {+inf}``."""

    values: Mapping[Action, Time]

    def __post_init__(self) -> None:
        for action, value in self.values.items():
            if value < 0:
                raise TimingError(f"negative time {value} for action {action!r}")

    def __call__(self, action: Action) -> Time:
        try:
            return self.values[action]
        except KeyError:
            raise TimingError(f"no execution time defined for action {action!r}") from None

    def __contains__(self, action: object) -> bool:
        return action in self.values

    def actions(self) -> tuple[Action, ...]:
        return tuple(self.values)

    def over(self, sequence: Sequence[Action]) -> list[Time]:
        """``C(alpha)`` — the time sequence of an execution sequence."""
        return [self(action) for action in sequence]

    @classmethod
    def constant(cls, actions: Iterable[Action], value: Time) -> "TimeFunction":
        return cls({a: value for a in actions})


class QualityTimeTable:
    """A family ``{C_q}_{q in Q}`` of execution-time functions.

    Definition 2.3 requires the functions to be non-decreasing in ``q``:
    higher quality never runs faster.  Construction validates this.

    Tables may be defined on *base* action names; when queried with an
    unfolded instance name (``"Motion_Estimate#12"``) the base action's
    entry is used.  This mirrors the paper's prototype tool, whose
    inputs are tables for the macroblock body only.
    """

    def __init__(
        self,
        quality_set: QualitySet,
        entries: Mapping[Action, Mapping[int, Time] | Sequence[Time] | Time],
    ) -> None:
        self._quality_set = quality_set
        table: dict[Action, dict[int, Time]] = {}
        for action, spec in entries.items():
            if isinstance(spec, Mapping):
                per_level = {int(q): float(t) for q, t in spec.items()}
                missing = [q for q in quality_set if q not in per_level]
                if missing:
                    raise TimingError(f"action {action!r} missing levels {missing}")
            elif isinstance(spec, (int, float)):
                per_level = {q: float(spec) for q in quality_set}
            else:
                values = list(spec)
                if len(values) != len(quality_set):
                    raise TimingError(
                        f"action {action!r}: expected {len(quality_set)} times, "
                        f"got {len(values)}"
                    )
                per_level = dict(zip(quality_set, (float(v) for v in values)))
            table[action] = per_level
        for action, per_level in table.items():
            previous: Time | None = None
            for q in quality_set:
                value = per_level[q]
                if value < 0:
                    raise TimingError(f"negative time for {action!r} at q={q}")
                if previous is not None and value < previous:
                    raise TimingError(
                        f"execution times must be non-decreasing in quality: "
                        f"{action!r} has C_{q} = {value} < {previous}"
                    )
                previous = value
        self._table = table

    @property
    def quality_set(self) -> QualitySet:
        return self._quality_set

    def actions(self) -> tuple[Action, ...]:
        return tuple(self._table)

    def _entry(self, action: Action) -> dict[int, Time]:
        entry = self._table.get(action)
        if entry is None:
            base, _ = split_iterated_action(action)
            entry = self._table.get(base)
        if entry is None:
            raise TimingError(f"no timing entry for action {action!r}")
        return entry

    def time(self, action: Action, quality: int) -> Time:
        """``C_q(a)`` for a quality level ``q`` in ``Q``."""
        if quality not in self._quality_set:
            raise TimingError(f"quality {quality} not in Q={tuple(self._quality_set)}")
        return self._entry(action)[quality]

    def at_quality(self, quality: int) -> Callable[[Action], Time]:
        """The time function ``C_q`` as a callable."""
        if quality not in self._quality_set:
            raise TimingError(f"quality {quality} not in Q={tuple(self._quality_set)}")

        def time_of(action: Action) -> Time:
            return self._entry(action)[quality]

        return time_of

    def under(self, assignment: "QualityAssignment") -> Callable[[Action], Time]:
        """The time function ``C_theta`` with ``C_theta(a) = C_theta(a)(a)``."""

        def time_of(action: Action) -> Time:
            return self._entry(action)[assignment(action)]

        return time_of

    def depends_on_quality(self, action: Action) -> bool:
        """True when the action's time actually varies with ``q``."""
        entry = self._entry(action)
        values = {entry[q] for q in self._quality_set}
        return len(values) > 1

    @staticmethod
    def validate_bounds(average: "QualityTimeTable", worst: "QualityTimeTable") -> None:
        """Check ``Cav_q <= Cwc_q`` for every action and level (Def. 2.3)."""
        if tuple(average.quality_set) != tuple(worst.quality_set):
            raise TimingError("average and worst-case tables use different quality sets")
        for action in average.actions():
            for q in average.quality_set:
                av = average.time(action, q)
                wc = worst.time(action, q)
                if av > wc:
                    raise TimingError(
                        f"Cav must not exceed Cwc: {action!r} at q={q} has "
                        f"Cav={av} > Cwc={wc}"
                    )


@dataclass(frozen=True)
class QualityAssignment:
    """A quality assignment ``theta : A -> Q``.

    Immutable; the quality manager's update ``theta |>i q`` (keep the
    first ``i`` scheduled actions' qualities, set every later action to
    ``q``) is provided by :meth:`override_suffix`.
    """

    values: Mapping[Action, int]

    def __call__(self, action: Action) -> int:
        try:
            return self.values[action]
        except KeyError:
            raise TimingError(f"no quality assigned to action {action!r}") from None

    def __contains__(self, action: object) -> bool:
        return action in self.values

    @classmethod
    def constant(cls, actions: Iterable[Action], quality: int) -> "QualityAssignment":
        """The constant assignment ``theta(a) = q`` for all ``a``."""
        return cls({a: quality for a in actions})

    def override_suffix(
        self, sequence: Sequence[Action], prefix_length: int, quality: int
    ) -> "QualityAssignment":
        """The paper's ``theta |>i q`` operator.

        Agrees with ``self`` on the first ``prefix_length`` elements of
        ``sequence`` and assigns ``quality`` to every remaining element.
        """
        updated = dict(self.values)
        for action in sequence[prefix_length:]:
            updated[action] = quality
        return QualityAssignment(updated)

    def with_action(self, action: Action, quality: int) -> "QualityAssignment":
        updated = dict(self.values)
        updated[action] = quality
        return QualityAssignment(updated)

    def restricted_agrees(
        self, other: "QualityAssignment", actions: Sequence[Action]
    ) -> bool:
        """Do two assignments agree on the given actions? (compatibility)"""
        return all(self(a) == other(a) for a in actions)
