"""Deadline functions (Definitions 2.1/2.3).

``D : A -> R+ u {+inf}`` associates with every action its *absolute*
deadline, measured from the beginning of the cycle.  In the
parameterized model each quality level may carry its own deadline
function ``D_q``; the paper's prototype tool additionally assumes the
*order* between deadlines is independent of the quality, which makes a
single EDF schedule valid for every quality assignment.

This module provides:

* :class:`DeadlineFunction` — a concrete ``D`` (possibly quality-
  indexed via :class:`QualityDeadlineTable`),
* deadline *patterns* used by the experiments: a uniform end-of-cycle
  deadline (the MPEG-4 frame budget) and linearly spread per-iteration
  deadlines (smoothness-oriented pacing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.action import Action, QualitySet, split_iterated_action
from repro.core.sequences import INFINITY, Time
from repro.errors import TimingError


@dataclass(frozen=True)
class DeadlineFunction:
    """An absolute-deadline map ``D : A -> R+ u {+inf}``.

    Deadlines are relative to the beginning of the cycle (the paper's
    "deadlines on the termination of actions since the beginning of a
    cycle").  A missing entry means ``+inf`` when ``total`` is False.
    """

    values: Mapping[Action, Time]
    total: bool = True

    def __post_init__(self) -> None:
        for action, value in self.values.items():
            if value < 0:
                raise TimingError(f"negative deadline {value} for action {action!r}")

    def __call__(self, action: Action) -> Time:
        value = self.values.get(action)
        if value is None:
            base, _ = split_iterated_action(action)
            value = self.values.get(base)
        if value is None:
            if self.total:
                raise TimingError(f"no deadline defined for action {action!r}")
            return INFINITY
        return value

    def over(self, sequence: Sequence[Action]) -> list[Time]:
        """``D(alpha)`` — the deadline sequence of an execution sequence."""
        return [self(action) for action in sequence]

    def shifted(self, offset: Time) -> "DeadlineFunction":
        """All deadlines shifted by ``offset`` (re-arming a new cycle).

        Infinite deadlines stay infinite.
        """
        return DeadlineFunction(
            {a: (d + offset if d != INFINITY else INFINITY) for a, d in self.values.items()},
            total=self.total,
        )

    def scaled(self, factor: float) -> "DeadlineFunction":
        if factor <= 0:
            raise TimingError(f"scale factor must be positive, got {factor}")
        return DeadlineFunction(
            {a: (d * factor if d != INFINITY else INFINITY) for a, d in self.values.items()},
            total=self.total,
        )

    @classmethod
    def uniform(cls, actions: Iterable[Action], deadline: Time) -> "DeadlineFunction":
        """Every action must finish by the same instant (frame budget)."""
        return cls({a: deadline for a in actions})

    @classmethod
    def unconstrained(cls, actions: Iterable[Action]) -> "DeadlineFunction":
        """All deadlines +inf (soft best-effort execution)."""
        return cls({a: INFINITY for a in actions})


class QualityDeadlineTable:
    """The family ``{D_q}_{q in Q}`` of Definition 2.3.

    Most deployments (and the paper's MPEG-4 example) use deadlines that
    do not depend on the quality; :meth:`quality_independent` builds
    that common case.  :meth:`order_is_quality_independent` checks the
    prototype-tool assumption that enables pre-computed EDF schedules.
    """

    def __init__(self, quality_set: QualitySet, per_quality: Mapping[int, DeadlineFunction]):
        missing = [q for q in quality_set if q not in per_quality]
        if missing:
            raise TimingError(f"deadline table missing quality levels {missing}")
        self._quality_set = quality_set
        self._per_quality = dict(per_quality)

    @classmethod
    def quality_independent(
        cls, quality_set: QualitySet, deadlines: DeadlineFunction
    ) -> "QualityDeadlineTable":
        return cls(quality_set, {q: deadlines for q in quality_set})

    @property
    def quality_set(self) -> QualitySet:
        return self._quality_set

    def at_quality(self, quality: int) -> DeadlineFunction:
        if quality not in self._quality_set:
            raise TimingError(f"quality {quality} not in Q={tuple(self._quality_set)}")
        return self._per_quality[quality]

    def deadline(self, action: Action, quality: int) -> Time:
        return self.at_quality(quality)(action)

    def under(self, assignment) -> Callable[[Action], Time]:
        """``D_theta`` with ``D_theta(a) = D_theta(a)(a)``."""

        def deadline_of(action: Action) -> Time:
            return self._per_quality[assignment(action)](action)

        return deadline_of

    def order_is_quality_independent(self, actions: Sequence[Action]) -> bool:
        """True when sorting actions by deadline yields the same order at
        every quality level (the prototype tool's applicability condition).
        """
        reference: list[Action] | None = None
        rank = {a: i for i, a in enumerate(actions)}
        for q in self._quality_set:
            deadline_of = self._per_quality[q]
            order = sorted(actions, key=lambda a: (deadline_of(a), rank[a]))
            if reference is None:
                reference = order
            elif order != reference:
                return False
        return True

    def shifted(self, offset: Time) -> "QualityDeadlineTable":
        return QualityDeadlineTable(
            self._quality_set,
            {q: d.shifted(offset) for q, d in self._per_quality.items()},
        )


def linear_iteration_deadlines(
    body_actions: Sequence[Action],
    iterations: int,
    cycle_budget: Time,
    slack_fraction: float = 0.0,
) -> DeadlineFunction:
    """Per-iteration pacing deadlines for an unfolded iterated graph.

    Iteration ``k`` (0-based) of the body must complete by
    ``(k+1)/iterations * cycle_budget`` stretched by ``slack_fraction``
    (a fraction of the budget granted as extra slack to every iteration
    except the last, which keeps the hard cycle budget).  With
    ``slack_fraction = 0`` this paces the cycle perfectly evenly — a
    deadline pattern that keeps quality variations smooth because no
    single iteration may hoard the budget.
    """
    if iterations <= 0:
        raise TimingError(f"iterations must be positive, got {iterations}")
    if not 0.0 <= slack_fraction <= 1.0:
        raise TimingError(f"slack_fraction must be in [0, 1], got {slack_fraction}")
    from repro.core.action import iterated_action

    values: dict[Action, Time] = {}
    for k in range(iterations):
        pace = (k + 1) / iterations * cycle_budget
        deadline = min(cycle_budget, pace + slack_fraction * cycle_budget)
        if k == iterations - 1:
            deadline = cycle_budget
        for action in body_actions:
            values[iterated_action(action, k)] = deadline
    return DeadlineFunction(values)
