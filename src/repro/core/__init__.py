"""Core library: the paper's fine-grain QoS control method.

Public surface of the reproduction of sections 2 (method) and 3 (tool)
of Combaz et al., DATE 2005.  See :mod:`repro.core.controller` for the
reference algorithm and :mod:`repro.core.fast_controller` for the
table-driven ("compiled") controller.
"""

from repro.core.action import Action, QualitySet, iterated_action, split_iterated_action
from repro.core.constraints import (
    ConstraintEvaluation,
    average_constraint_slack,
    evaluate_constraints,
    qual_const_av,
    qual_const_wc,
    worst_case_constraint_slack,
)
from repro.core.controller import CycleResult, Decision, ReferenceController
from repro.core.cycles import CyclicApplication
from repro.core.deadlines import (
    DeadlineFunction,
    QualityDeadlineTable,
    linear_iteration_deadlines,
)
from repro.core.edf import best_sched, edf_schedule, is_edf_order
from repro.core.fast_controller import (
    FastCycleResult,
    FastDecision,
    TableDrivenController,
)
from repro.core.feasibility import (
    FeasibilityReport,
    check_feasibility,
    is_feasible_schedule,
    slack_sequence,
    worst_slack,
)
from repro.core.policies import (
    BoundedStepPolicy,
    DecisionContext,
    FixedQualityPolicy,
    HysteresisPolicy,
    MaximalQualityPolicy,
    QualityPolicy,
)
from repro.core.precedence import PrecedenceGraph
from repro.core.sequences import INFINITY, Time, cumulative, minimum, suffix
from repro.core.system import ParameterizedSystem
from repro.core.tables import ControllerTables
from repro.core.timing import QualityAssignment, QualityTimeTable, TimeFunction

__all__ = [
    "Action",
    "BoundedStepPolicy",
    "ConstraintEvaluation",
    "ControllerTables",
    "CycleResult",
    "CyclicApplication",
    "DeadlineFunction",
    "Decision",
    "DecisionContext",
    "FastCycleResult",
    "FastDecision",
    "FeasibilityReport",
    "FixedQualityPolicy",
    "HysteresisPolicy",
    "INFINITY",
    "MaximalQualityPolicy",
    "ParameterizedSystem",
    "PrecedenceGraph",
    "QualityAssignment",
    "QualityDeadlineTable",
    "QualityPolicy",
    "QualitySet",
    "QualityTimeTable",
    "ReferenceController",
    "TableDrivenController",
    "Time",
    "TimeFunction",
    "average_constraint_slack",
    "best_sched",
    "check_feasibility",
    "cumulative",
    "edf_schedule",
    "evaluate_constraints",
    "is_edf_order",
    "is_feasible_schedule",
    "iterated_action",
    "linear_iteration_deadlines",
    "minimum",
    "qual_const_av",
    "qual_const_wc",
    "slack_sequence",
    "split_iterated_action",
    "suffix",
    "worst_case_constraint_slack",
    "worst_slack",
]
