"""Actions and quality levels.

The paper models application software as a set of *actions* (atomic
C-functions) ``A`` partially ordered by a precedence graph
(Definition 2.1), and a finite, non-empty set of integer *quality
levels* ``Q`` (Definition 2.3).  Execution times are non-decreasing in
the quality level; the controller trades quality against time.

Actions are plain strings throughout the library; this module provides
the small amount of structure shared by everything else:

* :class:`QualitySet` — a validated, ordered set of quality levels with
  ``qmin``/``qmax`` accessors.
* :func:`iterated_action` / :func:`split_iterated_action` — the naming
  convention used when a cyclic body (e.g. the macroblock graph of
  Fig. 2) is unfolded ``N`` times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ConfigurationError

#: Actions are identified by plain strings.
Action = str

#: Separator used to name the k-th instance of an action in an unfolded
#: iterated graph, e.g. ``"Motion_Estimate#12"``.
ITERATION_SEPARATOR = "#"


@dataclass(frozen=True)
class QualitySet:
    """A finite, non-empty, ordered set of integer quality levels.

    Definition 2.3 only requires ``Q`` to be a finite set of integers;
    levels need not be contiguous.  Iteration is in increasing order.

    >>> qs = QualitySet.from_range(8)
    >>> qs.qmin, qs.qmax, len(qs)
    (0, 7, 8)
    """

    levels: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("quality set Q must be non-empty")
        if len(set(self.levels)) != len(self.levels):
            raise ConfigurationError(f"duplicate quality levels: {self.levels}")
        if list(self.levels) != sorted(self.levels):
            object.__setattr__(self, "levels", tuple(sorted(self.levels)))

    @classmethod
    def from_range(cls, count: int, start: int = 0) -> "QualitySet":
        """Build the contiguous quality set ``{start, ..., start+count-1}``."""
        if count <= 0:
            raise ConfigurationError("quality set must contain at least one level")
        return cls(tuple(range(start, start + count)))

    @classmethod
    def of(cls, levels: Iterable[int]) -> "QualitySet":
        """Build a quality set from an arbitrary iterable of integers."""
        return cls(tuple(sorted(set(int(q) for q in levels))))

    @property
    def qmin(self) -> int:
        """The minimum quality level ``qmin = min(Q)`` (Definition 2.3)."""
        return self.levels[0]

    @property
    def qmax(self) -> int:
        """The maximum quality level ``max(Q)``."""
        return self.levels[-1]

    def __iter__(self) -> Iterator[int]:
        return iter(self.levels)

    def __len__(self) -> int:
        return len(self.levels)

    def __contains__(self, q: object) -> bool:
        return q in self.levels

    def index(self, q: int) -> int:
        """Rank of level ``q`` in increasing order (0 = qmin)."""
        try:
            return self.levels.index(q)
        except ValueError:
            raise ConfigurationError(f"quality level {q} not in Q={self.levels}") from None

    def below(self, q: int) -> tuple[int, ...]:
        """All levels ``<= q``, in increasing order."""
        return tuple(level for level in self.levels if level <= q)

    def descending(self) -> tuple[int, ...]:
        """Levels in decreasing order (the quality manager searches from qmax down)."""
        return tuple(reversed(self.levels))


def iterated_action(action: Action, iteration: int) -> Action:
    """Name the ``iteration``-th instance of ``action`` in an unfolded cycle.

    >>> iterated_action("Quantize", 3)
    'Quantize#3'
    """
    if iteration < 0:
        raise ConfigurationError(f"iteration index must be >= 0, got {iteration}")
    return f"{action}{ITERATION_SEPARATOR}{iteration}"


def split_iterated_action(name: Action) -> tuple[Action, int | None]:
    """Inverse of :func:`iterated_action`.

    Returns ``(base_action, iteration)``; ``iteration`` is ``None`` when
    the name does not carry an iteration suffix.

    >>> split_iterated_action("Quantize#3")
    ('Quantize', 3)
    >>> split_iterated_action("Quantize")
    ('Quantize', None)
    """
    base, sep, suffix = name.rpartition(ITERATION_SEPARATOR)
    if not sep:
        return name, None
    try:
        return base, int(suffix)
    except ValueError:
        return name, None
