"""EDF scheduling — the paper's ``Best_Sched`` component (section 2.2).

For systems with known execution times, feasible schedules can be
computed statically, e.g. as EDF schedules [Buttazzo 2000]: repeatedly
run, among the ready actions (all precedence predecessors completed),
the one with the earliest deadline.  EDF is optimal for this
single-resource, non-preemptive-within-action setting in the sense that
if any precedence-compatible order meets all deadlines, the EDF order
does too when actions are released together (classic Jackson/EDF
argument on a work-conserving single machine with identical release
times).

``Best_Sched(alpha, theta, i)`` must return a schedule that *preserves
the executed prefix* ``alpha[1, i]`` and orders the remaining actions by
EDF under the deadline function induced by ``theta``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.action import Action
from repro.core.precedence import PrecedenceGraph
from repro.core.sequences import Time
from repro.errors import SequenceError


def edf_schedule(
    graph: PrecedenceGraph,
    deadline_of: Callable[[Action], Time],
) -> list[Action]:
    """A full EDF schedule of ``graph`` under ``deadline_of``.

    Ties are broken by vocabulary order, making the result
    deterministic (and therefore cacheable by the prototype tool).
    """
    return graph.topological_order(priority=deadline_of)


def best_sched(
    graph: PrecedenceGraph,
    current: Sequence[Action],
    deadline_of: Callable[[Action], Time],
    prefix_length: int,
) -> list[Action]:
    """The paper's ``Best_Sched(alpha, theta_q, i)``.

    Keeps the first ``prefix_length`` actions of ``current`` (already
    executed — their order is history and cannot change) and EDF-orders
    the remaining actions under ``deadline_of`` (which is ``D_theta_q``).

    Raises :class:`SequenceError` if the prefix itself is not a valid
    execution sequence of ``graph``.
    """
    if prefix_length < 0 or prefix_length > len(current):
        raise SequenceError(
            f"prefix length {prefix_length} out of range for sequence of "
            f"length {len(current)}"
        )
    prefix = list(current[:prefix_length])
    graph.validate_execution_sequence(prefix)

    executed = set(prefix)
    remaining = [a for a in graph.actions if a not in executed]
    if len(executed) + len(remaining) != len(graph.actions):
        raise SequenceError("prefix contains actions outside the graph")

    rank = {a: i for i, a in enumerate(graph.actions)}
    indegree: dict[Action, int] = {}
    for action in remaining:
        indegree[action] = sum(1 for p in graph.predecessors(action) if p not in executed)

    key = lambda a: (deadline_of(a), rank[a])
    ready = sorted((a for a in remaining if indegree[a] == 0), key=key)
    tail: list[Action] = []
    while ready:
        current_action = ready.pop(0)
        tail.append(current_action)
        changed = False
        for nxt in graph.successors(current_action):
            if nxt in indegree and nxt not in executed:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
                    changed = True
        if changed:
            ready.sort(key=key)
    if len(tail) != len(remaining):
        raise SequenceError("could not schedule remaining actions (cycle?)")
    return prefix + tail


def is_edf_order(
    graph: PrecedenceGraph,
    sequence: Sequence[Action],
    deadline_of: Callable[[Action], Time],
) -> bool:
    """Check that ``sequence`` is *an* EDF order of ``graph``.

    At every position, the scheduled action must have a deadline no
    later than every other action that was ready at that point.
    (Multiple EDF orders exist when deadlines tie.)
    """
    if not graph.is_schedule(sequence):
        return False
    executed: set[Action] = set()
    for action in sequence:
        ready = [
            a
            for a in graph.actions
            if a not in executed and all(p in executed for p in graph.predecessors(a))
        ]
        if any(deadline_of(other) < deadline_of(action) for other in ready):
            return False
        executed.add(action)
    return True
