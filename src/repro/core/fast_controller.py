"""Table-driven QoS controller — the generated ("compiled") controller.

The paper's compiler links the EDF schedule, the pre-computed constraint
tables and a generic controller into the application.  This class is
that generic controller: it never re-runs the scheduler or re-walks
suffixes at runtime; each decision is an O(|Q|) comparison of the cycle
counter against one table row.

It presents the same interface as
:class:`repro.core.controller.ReferenceController` (``start_cycle`` /
``decide`` / ``record_completion``) and is verified by tests to take
identical decisions on identical inputs.  On top of that it supports:

* per-cycle deadline *shifts* (re-arming the same tables when the frame
  budget moves with buffer occupancy),
* a decision *granularity* — re-decide the quality only every
  ``granularity``-th action, executing the other actions at the last
  chosen level.  ``granularity=1`` is the paper's fine-grain control;
  large values emulate the coarse-grain prior art the paper argues
  against (decide once per cycle), enabling the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.action import Action
from repro.core.policies import DecisionContext, MaximalQualityPolicy, QualityPolicy
from repro.core.sequences import Time
from repro.core.system import ParameterizedSystem
from repro.core.tables import ControllerTables
from repro.errors import ConfigurationError, SequenceError


@dataclass(frozen=True)
class FastDecision:
    """One table-driven controller step."""

    step: int
    action: Action
    quality: int
    fresh: bool
    degraded: bool


class TableDrivenController:
    """The compiled controller: EDF schedule + slack tables + policy.

    Parameters
    ----------
    system:
        The parameterized system (must satisfy the prototype-tool
        condition: quality-independent deadline order).
    policy:
        Quality-selection policy (default: the paper's maximal policy).
    constraint_mode:
        ``"both"`` / ``"average"`` / ``"worst"`` (see the reference
        controller).
    granularity:
        Re-decide the quality every this-many actions (1 = per action).
    tables:
        Pre-built tables; built from the system when omitted.
    validate:
        Check the qmin-feasibility precondition (default True).
    """

    def __init__(
        self,
        system: ParameterizedSystem,
        policy: QualityPolicy | None = None,
        constraint_mode: str = "both",
        granularity: int = 1,
        tables: ControllerTables | None = None,
        validate: bool = True,
    ) -> None:
        if granularity < 1:
            raise ConfigurationError(f"granularity must be >= 1, got {granularity}")
        if validate:
            system.validate()
        self.system = system
        self.policy = policy if policy is not None else MaximalQualityPolicy()
        self.constraint_mode = constraint_mode
        self.granularity = granularity
        self.tables = tables if tables is not None else ControllerTables.from_system(system)
        self.schedule: tuple[Action, ...] = self.tables.schedule
        self._qmin = system.qmin
        self._quality_set = system.quality_set
        self.start_cycle()

    # ------------------------------------------------------------------
    # cycle lifecycle
    # ------------------------------------------------------------------

    def start_cycle(self, deadline_shift: Time = 0.0) -> None:
        """Re-arm at location 0; ``deadline_shift`` moves every deadline.

        A positive shift models a larger-than-nominal budget for this
        cycle (e.g. the input buffer was empty and the frame arrived
        early); a negative one models a tighter budget.
        """
        self.step = 0
        self.elapsed: Time = 0.0
        self.shift = deadline_shift
        self.previous_quality: int | None = None
        self.current_quality: int = self._qmin
        self.decisions_made = 0
        self.degraded_steps = 0
        self.quality_trace: list[int] = []
        self._pending = False
        reset = getattr(self.policy, "reset", None)
        if callable(reset):
            reset()

    @property
    def done(self) -> bool:
        return self.step >= len(self.schedule)

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def decide(self) -> FastDecision:
        """Pick the next action and its quality from the tables."""
        if self.done:
            raise SequenceError("controller cycle is complete; call start_cycle()")
        if self._pending:
            raise SequenceError("previous decision not yet completed")

        i = self.step
        fresh = i % self.granularity == 0
        degraded = False
        if fresh:
            feasible = self.tables.feasible_qualities(
                i, self.elapsed, self.shift, self.constraint_mode
            )
            if not feasible:
                degraded = True
                chosen = self._qmin
            else:
                context = DecisionContext(
                    step=i,
                    previous_quality=self.previous_quality,
                    quality_set=self._quality_set,
                )
                chosen = self.policy.select(feasible, context)
            self.current_quality = chosen
            self.decisions_made += 1
        else:
            chosen = self.current_quality

        if degraded:
            self.degraded_steps += 1
        self._pending = True
        return FastDecision(
            step=i,
            action=self.schedule[i],
            quality=chosen,
            fresh=fresh,
            degraded=degraded,
        )

    def record_completion(self, actual_time: Time) -> None:
        if not self._pending:
            raise SequenceError("no pending decision to complete")
        if actual_time < 0:
            raise ConfigurationError(f"actual execution time must be >= 0, got {actual_time}")
        self.elapsed += actual_time
        self.previous_quality = self.current_quality
        self.quality_trace.append(self.current_quality)
        self._pending = False
        self.step += 1

    # ------------------------------------------------------------------
    # zero-overhead query used by the tight simulation loops
    # ------------------------------------------------------------------

    def peek_max_quality(self, position: int, elapsed: Time) -> int | None:
        """``qM`` at an arbitrary location/time without mutating state."""
        return self.tables.max_feasible_quality(
            position, elapsed, self.shift, self.constraint_mode
        )

    def run_cycle(self, time_source, deadline_shift: Time = 0.0) -> "FastCycleResult":
        """Drive a full cycle against ``time_source(action, quality)``."""
        self.start_cycle(deadline_shift)
        while not self.done:
            decision = self.decide()
            actual = time_source(decision.action, decision.quality)
            self.record_completion(actual)
        return FastCycleResult(
            qualities=tuple(self.quality_trace),
            total_time=self.elapsed,
            decisions_made=self.decisions_made,
            degraded_steps=self.degraded_steps,
        )


@dataclass(frozen=True)
class FastCycleResult:
    """Outcome of one table-driven cycle."""

    qualities: tuple[int, ...]
    total_time: Time
    decisions_made: int
    degraded_steps: int
