"""Schedule feasibility (Definition 2.2).

A schedule ``alpha`` (an execution sequence containing every action) is
*feasible* with respect to an execution-time function ``C`` and a
deadline function ``D`` when::

    min( D(alpha) - C_hat(alpha) ) >= 0

i.e. the cumulative completion time of every action stays at or below
its deadline.  The quantity ``D(alpha) - C_hat(alpha)`` is the *slack*
sequence; its minimum is the schedule's worst slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.action import Action
from repro.core.precedence import PrecedenceGraph
from repro.core.sequences import (
    INFINITY,
    Time,
    cumulative,
    minimum,
    pointwise_difference,
)


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of a feasibility check, with per-position diagnostics."""

    feasible: bool
    worst_slack: Time
    completion_times: tuple[Time, ...]
    slacks: tuple[Time, ...]
    first_violation: int | None

    def __bool__(self) -> bool:
        return self.feasible


def slack_sequence(
    sequence: Sequence[Action],
    time_of: Callable[[Action], Time],
    deadline_of: Callable[[Action], Time],
    start_time: Time = 0.0,
) -> list[Time]:
    """``D(alpha) - C_hat(alpha)`` with the cumulative sum offset by
    ``start_time`` (used for suffix evaluation mid-cycle)."""
    times = [time_of(a) for a in sequence]
    completions = [start_time + c for c in cumulative(times)]
    deadlines = [deadline_of(a) for a in sequence]
    return pointwise_difference(deadlines, completions)


def check_feasibility(
    sequence: Sequence[Action],
    time_of: Callable[[Action], Time],
    deadline_of: Callable[[Action], Time],
    start_time: Time = 0.0,
) -> FeasibilityReport:
    """Evaluate Definition 2.2 and report the slack profile."""
    times = [time_of(a) for a in sequence]
    completions = tuple(start_time + c for c in cumulative(times))
    deadlines = [deadline_of(a) for a in sequence]
    slacks = tuple(d - c for d, c in zip(deadlines, completions))
    worst = minimum(slacks)
    first_violation = None
    for position, slack in enumerate(slacks):
        if slack < 0:
            first_violation = position
            break
    return FeasibilityReport(
        feasible=worst >= 0,
        worst_slack=worst,
        completion_times=completions,
        slacks=slacks,
        first_violation=first_violation,
    )


def is_feasible_schedule(
    graph: PrecedenceGraph,
    sequence: Sequence[Action],
    time_of: Callable[[Action], Time],
    deadline_of: Callable[[Action], Time],
) -> bool:
    """Definition 2.2 in full: a *schedule* of G that respects deadlines."""
    if not graph.is_schedule(sequence):
        return False
    return check_feasibility(sequence, time_of, deadline_of).feasible


def worst_slack(
    sequence: Sequence[Action],
    time_of: Callable[[Action], Time],
    deadline_of: Callable[[Action], Time],
    start_time: Time = 0.0,
) -> Time:
    """``min(D(alpha) - C_hat(alpha))`` — +inf for the empty sequence."""
    return minimum(slack_sequence(sequence, time_of, deadline_of, start_time))
