"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A precedence graph is malformed (cycle, unknown action, ...)."""


class SequenceError(ReproError):
    """An execution sequence violates precedence or prefix constraints."""


class TimingError(ReproError):
    """An execution-time table violates the model's assumptions.

    The parameterized real-time system of Definition 2.3 requires
    ``Cav_q <= Cwc_q`` and both to be non-decreasing in the quality
    level ``q``.
    """


class InfeasibleError(ReproError):
    """No feasible schedule exists at minimum quality (Problem, section 2.1).

    The control problem is only well-posed when the set of feasible
    schedules with respect to ``Cwc_qmin`` and ``D_qmin`` is non-empty.
    """


class DeadlineMissError(ReproError):
    """An execution missed a hard deadline.

    Raised by the platform simulator when a safety violation occurs;
    the paper's Proposition 2.1 guarantees the controller never causes
    this as long as actual times stay below ``Cwc``.
    """


class ConfigurationError(ReproError):
    """Invalid experiment or simulator configuration."""
