"""The prototype tool (Fig. 4).

The paper's tool takes the precedence graph, the Cav/Cwc tables and the
deadline order, and produces (a) C code for an EDF schedule and (b)
pre-computed constraint tables, which a compiler links with the action
code and a generic controller into the *controlled application
software*.  This package is that pipeline:

* :mod:`repro.tool.dataflow` — model extraction and applicability checks;
* :mod:`repro.tool.timing_analysis` — Cav/Cwc estimation from profiled
  traces, plus the EWMA average-learning the paper lists as future work;
* :mod:`repro.tool.compiler` — assembles a ControlledApplication
  (schedule + tables + generic controller);
* :mod:`repro.tool.codegen` — emits the controller as C source;
* :mod:`repro.tool.overhead` — code/memory/runtime overhead model
  (the paper's ~2 % / <=1 % / <1.5 % measurements).
"""

from repro.tool.compiler import ControlledApplication, compile_application
from repro.tool.dataflow import DataflowReport, analyze_dataflow
from repro.tool.codegen import generate_c_controller
from repro.tool.overhead import OverheadReport, estimate_overheads
from repro.tool.timing_analysis import (
    EwmaAverageEstimator,
    TimingProfile,
    estimate_tables_from_profile,
)

__all__ = [
    "ControlledApplication",
    "DataflowReport",
    "EwmaAverageEstimator",
    "OverheadReport",
    "TimingProfile",
    "analyze_dataflow",
    "compile_application",
    "estimate_overheads",
    "estimate_tables_from_profile",
    "generate_c_controller",
]
