"""Instrumentation overhead model (section 3's three measurements).

"The overhead due to the instrumentation of the application software in
the size of the compiled code is of the order of 2 % ... the
corresponding overhead in memory allocation is not more than 1 % ...
the overhead in runtime is estimated less than 1.5 % of the overall
execution time."

We cannot compile for XiRisc, so the three ratios are *modelled* from
the same artifact sizes the paper measured (DESIGN.md section 2):

* code size — generic controller code plus embedded schedule versus
  the application's compiled size (LOC x bytes-per-LOC);
* memory — the constraint tables (stored as int32 cycle counts) plus
  controller state versus the application's working set;
* runtime — cycles per decision x decisions per cycle versus the
  average cycle workload.

The bench asserts the modelled ratios land in the paper's (<=2 %,
<=1 %, <1.5 %) band for the paper's encoder, and the simulation
*measures* the runtime ratio independently from its cycle accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tables import ControllerTables

#: Compiled-code density assumed for the C application (bytes per LOC).
BYTES_PER_LOC = 36.0

#: Size of the generic controller's code (a few hundred instructions).
GENERIC_CONTROLLER_BYTES = 2_400.0

#: Bytes of schedule representation per action (an index + a call slot).
SCHEDULE_BYTES_PER_ACTION = 8.0

#: Controller runtime state (cycle register copy, indices, current q).
CONTROLLER_STATE_BYTES = 64.0

#: Working-set estimate for the video encoder: reference + current frame
#: and bitstream buffers for PAL SD (two luma+chroma frames ~1.2 MB plus
#: code); used as the denominator of the memory ratio.
APPLICATION_MEMORY_BYTES = 2_500_000.0


@dataclass(frozen=True)
class OverheadReport:
    """The three modelled overhead ratios plus their ingredients."""

    code_bytes: float
    application_code_bytes: float
    memory_bytes: float
    application_memory_bytes: float
    decision_cycles_per_cycle: float
    workload_cycles_per_cycle: float

    @property
    def code_ratio(self) -> float:
        return self.code_bytes / self.application_code_bytes

    @property
    def memory_ratio(self) -> float:
        return self.memory_bytes / self.application_memory_bytes

    @property
    def runtime_ratio(self) -> float:
        if self.workload_cycles_per_cycle == 0:
            return 0.0
        return self.decision_cycles_per_cycle / self.workload_cycles_per_cycle

    def as_dict(self) -> dict[str, float]:
        return {
            "code_ratio": self.code_ratio,
            "memory_ratio": self.memory_ratio,
            "runtime_ratio": self.runtime_ratio,
        }


def estimate_overheads(
    tables: ControllerTables,
    application_loc: int,
    decision_overhead_cycles: float,
    system=None,
    table_cell_bytes: int = 4,
    body_length: int | None = None,
) -> OverheadReport:
    """Model the three overhead ratios for a compiled application.

    When ``body_length`` is given (a cyclic application of that body
    size), the table footprint uses the affine-compressed form the real
    tool would embed — the schedule itself is likewise a loop, so the
    schedule code does not grow with the iteration count.
    """
    schedule_length = len(tables.schedule)
    compressed = None
    if body_length is not None:
        from repro.core.tables import CompressedPeriodicTables

        compressed = CompressedPeriodicTables.from_tables(tables, body_length)
    if compressed is not None:
        code_bytes = (
            GENERIC_CONTROLLER_BYTES + SCHEDULE_BYTES_PER_ACTION * body_length
        )
        table_bytes = compressed.memory_bytes(table_cell_bytes)
    else:
        code_bytes = (
            GENERIC_CONTROLLER_BYTES + SCHEDULE_BYTES_PER_ACTION * schedule_length
        )
        table_bytes = tables.memory_bytes(table_cell_bytes)
    application_code_bytes = application_loc * BYTES_PER_LOC
    memory_bytes = table_bytes + CONTROLLER_STATE_BYTES

    decision_cycles = decision_overhead_cycles * schedule_length
    if system is not None:
        # a representative operating point: mid-quality average load
        mid_q = list(system.quality_set)[len(system.quality_set) // 2]
        workload = sum(
            system.average_times.time(action, mid_q) for action in tables.schedule
        )
    else:
        workload = 0.0
    return OverheadReport(
        code_bytes=code_bytes,
        application_code_bytes=application_code_bytes,
        memory_bytes=memory_bytes,
        application_memory_bytes=APPLICATION_MEMORY_BYTES,
        decision_cycles_per_cycle=decision_cycles,
        workload_cycles_per_cycle=workload,
    )
