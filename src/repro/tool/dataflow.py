"""Dataflow analysis (the first box of Fig. 4).

Extracts the controller-facing model from an application description:
validates the precedence graph, checks the prototype tool's
applicability condition (deadline order independent of quality),
computes the EDF schedule, and reports structural facts the compiler
and the overhead model consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.action import Action, split_iterated_action
from repro.core.edf import edf_schedule
from repro.core.system import ParameterizedSystem
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DataflowReport:
    """What the tool learned about the application."""

    actions: tuple[Action, ...]
    schedule: tuple[Action, ...]
    quality_sensitive_actions: tuple[Action, ...]
    sources: tuple[Action, ...]
    sinks: tuple[Action, ...]
    critical_path_length: int
    deadline_order_quality_independent: bool

    @property
    def parallelism(self) -> float:
        """Actions over critical-path length (1.0 = a pure pipeline)."""
        if self.critical_path_length == 0:
            return 1.0
        return len(self.actions) / self.critical_path_length


def critical_path_length(graph) -> int:
    """Longest chain in the DAG, in actions."""
    lengths: dict[Action, int] = {}
    for action in graph.topological_order():
        predecessors = graph.predecessors(action)
        lengths[action] = 1 + max((lengths[p] for p in predecessors), default=0)
    return max(lengths.values(), default=0)


def analyze_dataflow(system: ParameterizedSystem) -> DataflowReport:
    """Run the tool's dataflow analysis over a parameterized system."""
    graph = system.graph
    independent = system.supports_precomputed_schedule()
    schedule = tuple(edf_schedule(graph, system.deadline_at(system.qmin)))
    sensitive = []
    seen_bases: set[str] = set()
    for action in graph.actions:
        base, _ = split_iterated_action(action)
        if base in seen_bases:
            continue
        seen_bases.add(base)
        if system.average_times.depends_on_quality(action) or (
            system.worst_times.depends_on_quality(action)
        ):
            sensitive.append(base)
    return DataflowReport(
        actions=graph.actions,
        schedule=schedule,
        quality_sensitive_actions=tuple(sensitive),
        sources=graph.sources(),
        sinks=graph.sinks(),
        critical_path_length=critical_path_length(graph),
        deadline_order_quality_independent=independent,
    )


def require_tool_applicability(system: ParameterizedSystem) -> None:
    """Raise unless the prototype tool can handle this system."""
    if not system.supports_precomputed_schedule():
        raise ConfigurationError(
            "prototype tool requires the order between deadlines to be "
            "independent of the quality (section 3)"
        )
