"""CI bench-regression gate: compare BENCH_*.json against baselines.

The bench suite writes each bench's headline numbers to a
``BENCH_<name>.json`` trajectory file at the repo root (see
``benchmarks/conftest.py``).  This tool closes the loop: a committed
``benchmarks/baselines.json`` declares, per bench and per metric, the
envelope the freshly measured numbers must stay inside, and CI fails
the build when one escapes — so a perf or acceptance regression cannot
merge silently just because no assertion in the bench itself tripped.

Rule vocabulary (per metric, combinable)::

    {"min": 5.0}                     # value >= 5.0  (speedups, floors)
    {"max": 0.10}                    # value <= 0.10 (overheads, costs)
    {"equal": 2.526}                 # exact match   (counts, results)
    {"equal": 2.852, "tolerance": 0.01}   # |value - 2.852| <= 0.01

``min``/``max`` express *acceptance floors and cost ceilings* — they
are deliberately looser than the current measurement so machine speed
differences don't flake the gate; ``equal`` pins *deterministic
results* (served counts, mean qualities), where any drift means the
computation itself changed and the baseline must be re-recorded on
purpose (``--update`` rewrites the pinned values from the current
trajectories, for exactly that case).

Usage::

    PYTHONPATH=src python -m repro.tool.bench_gate
    PYTHONPATH=src python -m repro.tool.bench_gate --update
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

#: Default locations, relative to the repo root.
DEFAULT_BASELINES = Path("benchmarks") / "baselines.json"

_RULE_KEYS = {"min", "max", "equal", "tolerance"}


@dataclass(frozen=True)
class Check:
    """One (bench, metric) comparison and its verdict."""

    bench: str
    metric: str
    value: object
    rule: dict
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def evaluate_metric(value, rule: dict) -> tuple[str, ...]:
    """Apply one metric's rule; return the (possibly empty) failures."""
    unknown = set(rule) - _RULE_KEYS
    if unknown:
        raise ValueError(f"unknown rule keys: {sorted(unknown)}")
    if "tolerance" in rule and "equal" not in rule:
        raise ValueError("'tolerance' requires 'equal'")
    failures = []
    if value is None:
        return ("metric missing from trajectory",)
    if "min" in rule and not value >= rule["min"]:
        failures.append(f"{value} < min {rule['min']}")
    if "max" in rule and not value <= rule["max"]:
        failures.append(f"{value} > max {rule['max']}")
    if "equal" in rule:
        expected = rule["equal"]
        tolerance = rule.get("tolerance", 0)
        if isinstance(expected, (int, float)) and not isinstance(expected, bool):
            if not abs(value - expected) <= tolerance:
                failures.append(
                    f"{value} != {expected} (tolerance {tolerance})"
                )
        elif value != expected:
            failures.append(f"{value!r} != {expected!r}")
    return tuple(failures)


def run_gate(baselines_path: Path, root: Path) -> list[Check]:
    """Evaluate every baseline rule against the trajectories in ``root``."""
    with open(baselines_path) as handle:
        baselines = json.load(handle)
    checks: list[Check] = []
    for bench, entry in sorted(baselines.items()):
        source = root / entry["source"]
        if not source.exists():
            checks.append(
                Check(
                    bench,
                    "<file>",
                    None,
                    {},
                    (f"{entry['source']} not found — did the bench run?",),
                )
            )
            continue
        with open(source) as handle:
            trajectory = json.load(handle)
        for metric, rule in sorted(entry["metrics"].items()):
            value = trajectory.get(metric)
            checks.append(
                Check(bench, metric, value, rule, evaluate_metric(value, rule))
            )
    return checks


def update_baselines(baselines_path: Path, root: Path) -> int:
    """Re-pin every ``equal`` rule from the current trajectories."""
    with open(baselines_path) as handle:
        baselines = json.load(handle)
    updated = 0
    for entry in baselines.values():
        source = root / entry["source"]
        if not source.exists():
            continue
        with open(source) as handle:
            trajectory = json.load(handle)
        for metric, rule in entry["metrics"].items():
            if "equal" in rule and metric in trajectory:
                if rule["equal"] != trajectory[metric]:
                    rule["equal"] = trajectory[metric]
                    updated += 1
    with open(baselines_path, "w") as handle:
        json.dump(baselines, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return updated


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tool.bench_gate",
        description="Fail when a BENCH_*.json trajectory leaves its baseline envelope.",
    )
    parser.add_argument(
        "--baselines",
        type=Path,
        default=None,
        help=f"baseline rules file (default {DEFAULT_BASELINES})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path("."),
        help="repo root holding the BENCH_*.json trajectories",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="re-pin the 'equal' baselines from the current trajectories",
    )
    args = parser.parse_args(argv)
    baselines = args.baselines
    if baselines is None:
        baselines = args.root / DEFAULT_BASELINES
    if args.update:
        updated = update_baselines(baselines, args.root)
        print(f"bench-gate: re-pinned {updated} baseline value(s)")
        return 0
    checks = run_gate(baselines, args.root)
    failed = [c for c in checks if not c.ok]
    for check in checks:
        status = "FAIL" if check.failures else "ok"
        detail = "; ".join(check.failures) if check.failures else check.value
        print(f"[{status}] {check.bench}.{check.metric}: {detail}")
    if failed:
        print(
            f"bench-gate: {len(failed)} of {len(checks)} checks failed",
            file=sys.stderr,
        )
        return 1
    print(f"bench-gate: all {len(checks)} checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
