"""Timing analysis (the second box of Fig. 4).

"We consider single threaded implementations ... on a platform for
which it is possible by using timing analysis and profiling techniques,
to compute estimates of worst-case execution times and average
execution times of actions for the different levels of quality."

Two estimators:

* :class:`TimingProfile` / :func:`estimate_tables_from_profile` —
  offline profiling: collect per-(action, quality) duration samples
  from traces and derive ``Cav`` (sample mean) and ``Cwc`` (sample max
  inflated by a safety margin).  Monotonicity in q is enforced by
  running maxima, since finite samples of a monotone family may not be
  sample-monotone.
* :class:`EwmaAverageEstimator` — the paper's future-work item
  ("application of learning techniques for better estimation of the
  average execution times"): an online exponentially-weighted average
  the controller can refresh between cycles.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.action import QualitySet, split_iterated_action
from repro.core.timing import QualityTimeTable
from repro.errors import ConfigurationError, TimingError
from repro.platform.trace import ExecutionTrace


@dataclass
class TimingProfile:
    """Accumulated duration samples per (base action, quality)."""

    samples: dict[tuple[str, int], list[float]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def add(self, action: str, quality: int, duration: float) -> None:
        if duration < 0:
            raise ConfigurationError("durations must be >= 0")
        base, _ = split_iterated_action(action)
        self.samples[(base, quality)].append(duration)

    def add_trace(self, trace: ExecutionTrace) -> None:
        for event in trace:
            self.add(event.action, event.quality, event.duration)

    def count(self, action: str, quality: int) -> int:
        return len(self.samples.get((action, quality), ()))

    def actions(self) -> list[str]:
        return sorted({action for action, _ in self.samples})


def estimate_tables_from_profile(
    profile: TimingProfile,
    quality_set: QualitySet,
    wcet_margin: float = 1.2,
) -> tuple[QualityTimeTable, QualityTimeTable]:
    """Derive (Cav, Cwc) tables from profiled samples.

    ``wcet_margin`` inflates the observed maximum — profiling can only
    ever *under*-estimate a true WCET, so static-analysis practice adds
    head-room.  Raises :class:`TimingError` if any (action, level) has
    no samples: the tool cannot guess unobserved behaviour.
    """
    if wcet_margin < 1.0:
        raise ConfigurationError("wcet_margin must be >= 1")
    av_entries: dict[str, dict[int, float]] = {}
    wc_entries: dict[str, dict[int, float]] = {}
    for action in profile.actions():
        av_levels: dict[int, float] = {}
        wc_levels: dict[int, float] = {}
        running_av = 0.0
        running_wc = 0.0
        for q in quality_set:
            samples = profile.samples.get((action, q))
            if not samples:
                raise TimingError(
                    f"no samples for action {action!r} at quality {q}: "
                    "profile every level before generating tables"
                )
            mean = sum(samples) / len(samples)
            worst = max(samples) * wcet_margin
            # enforce the model's monotonicity on finite samples
            running_av = max(running_av, mean)
            running_wc = max(running_wc, worst, running_av)
            av_levels[q] = running_av
            wc_levels[q] = running_wc
        av_entries[action] = av_levels
        wc_entries[action] = wc_levels
    average = QualityTimeTable(quality_set, av_entries)
    worst = QualityTimeTable(quality_set, wc_entries)
    QualityTimeTable.validate_bounds(average, worst)
    return average, worst


class EwmaAverageEstimator:
    """Online average-execution-time learning (paper section 4).

    Keeps one exponentially-weighted mean per (base action, quality).
    ``estimate`` falls back to the prior (the static table) until
    enough observations arrive.
    """

    def __init__(self, prior: QualityTimeTable, alpha: float = 0.05):
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError("alpha must be in (0, 1]")
        self.prior = prior
        self.alpha = alpha
        self._means: dict[tuple[str, int], float] = {}
        self._counts: dict[tuple[str, int], int] = {}

    def observe(self, action: str, quality: int, duration: float) -> None:
        if duration < 0:
            raise ConfigurationError("durations must be >= 0")
        base, _ = split_iterated_action(action)
        key = (base, quality)
        if key not in self._means:
            self._means[key] = float(duration)
            self._counts[key] = 1
            return
        self._means[key] += self.alpha * (duration - self._means[key])
        self._counts[key] += 1

    def estimate(self, action: str, quality: int) -> float:
        base, _ = split_iterated_action(action)
        value = self._means.get((base, quality))
        if value is None:
            return self.prior.time(action, quality)
        return value

    def observations(self, action: str, quality: int) -> int:
        base, _ = split_iterated_action(action)
        return self._counts.get((base, quality), 0)

    def learned_table(self, quality_set: QualitySet) -> QualityTimeTable:
        """Materialize the learned averages as a table.

        Monotonicity in q is restored with running maxima (observation
        noise can locally invert an otherwise monotone family).
        """
        entries: dict[str, dict[int, float]] = {}
        bases = sorted({base for base, _ in self._means} | set(self.prior.actions()))
        for base in bases:
            running = 0.0
            levels: dict[int, float] = {}
            for q in quality_set:
                running = max(running, self.estimate(base, q))
                levels[q] = running
            entries[base] = levels
        return QualityTimeTable(quality_set, entries)
