"""Pre-drawn per-clip execution times: the state side of the engine split.

The scalar session used to draw each frame's stochastic action times
*while encoding it* (~10 generator calls per frame, on the hot path,
interleaved with scheduling).  A :class:`FrameTimeBank` instead draws
the **entire clip's** times once, at session construction, into dense
arrays:

* ``grab``  — ``(frames, macroblocks)`` Grab times,
* ``me``    — ``(frames, macroblocks, levels)`` Motion_Estimate times
  for every quality level (I-frames hold the intra cost in every
  column, mirroring :meth:`EncoderSimulation._draw_frame_times`),
* ``post``  — ``(frames, macroblocks)`` summed post-ME action times.

The bank also pre-fuses the decision kernels' per-macroblock constants
(see the :mod:`repro.engine.kernel` contract) so neither executor adds
them on the hot path:

* ``grab_plus`` — ``2.0 * overhead + grab``,
* ``me_plus``   — ``me + (7.0 * overhead + post)`` broadcast over
  levels.

The fusing adds are performed here exactly as the kernels used to
perform them per call — identical operands, identical order — so the
elapsed-time chain is bit-for-bit unchanged.  Both the scalar and the
batched kernels read the same bank, so cross-engine bit-identity of the
stochastic inputs is structural: there is exactly one draw per (frame,
macroblock, action), made before any engine runs.

Draw order is part of the determinism contract (same config + salt =>
same bank, independent of scheduling): per bulk pass over the whole
clip — (1) macroblock motion normals, (2) Grab betas, (3) post-ME betas
in ``_POST_ME_ACTIONS`` order with the compress motion scaling,
(4) Motion_Estimate betas per level in quality order, (5) I-frame rows
overwritten by intra draws in frame order.  Deterministic distributions
(``Cav == Cwc``) consume no randomness, exactly like ``sample_many``.

Unlike the per-frame scheme, the bank draws times for *every* frame of
the clip, including frames the timeline later skips — which is what
makes the draws independent of scheduling (and hence of the engine).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.sim.encoder_loop import _POST_ME_ACTIONS
from repro.video.pipeline import COMPRESS_ACTION, GRAB_ACTION


class FrameTimeBank:
    """All stochastic action times for one session's clip.

    Parameters
    ----------
    simulation:
        The session's (shared) :class:`EncoderSimulation`; supplies the
        clip contents, the per-action time distributions, and the
        config's motion/load parameters.  Only read, never mutated.
    rng:
        The session-private timing generator (salted by stream id), to
        be consumed exactly once, here.
    """

    __slots__ = (
        "grab",
        "me",
        "post",
        "grab_plus",
        "me_plus",
        "frames",
        "macroblocks",
    )

    def __init__(self, simulation, rng: np.random.Generator) -> None:
        cfg = simulation.config
        contents = simulation.contents
        levels = simulation._levels
        frames = len(contents)
        count = cfg.macroblocks
        total = frames * count

        # (1) per-macroblock motion around each frame's activity, the
        # bulk form of video.content.macroblock_motion
        frame_motion = np.asarray(
            [content.motion_activity for content in contents], dtype=np.float64
        )
        mb_motion = np.clip(
            rng.normal(frame_motion[:, None], cfg.motion_spread, size=(frames, count)),
            0.02,
            0.98,
        )
        scales = cfg.load_model.scales(mb_motion)

        # (2) Grab, (3) post-ME sum with compress scaled by motion
        fixed = simulation._fixed_dists
        grab = fixed[GRAB_ACTION].sample_many(rng, total).reshape(frames, count)
        post = np.zeros((frames, count))
        compress_scale = 0.8 + cfg.compress_motion_slope * mb_motion
        for action in _POST_ME_ACTIONS:
            action_scales = (
                compress_scale.ravel() if action == COMPRESS_ACTION else 1.0
            )
            post += fixed[action].sample_many(rng, total, action_scales).reshape(
                frames, count
            )

        # (4) Motion_Estimate per level; (5) I-frames run intra at the
        # minimum-level cost whatever the controller asks for
        me_dists = simulation._me_dists
        flat_scales = scales.ravel()
        me = np.stack(
            [
                me_dists[q].sample_many(rng, total, flat_scales).reshape(frames, count)
                for q in levels
            ],
            axis=2,
        )
        iframe_rows = [f for f, content in enumerate(contents) if content.is_iframe]
        if iframe_rows:
            qmin = simulation.quality_set.qmin
            intra = me_dists[qmin].sample_many(
                rng, len(iframe_rows) * count
            ).reshape(len(iframe_rows), count)
            me[iframe_rows] = intra[:, :, None]

        # the kernels' fused constants, folded in once at build time:
        # same adds the executors used to perform per call, so the
        # elapsed chain is bit-identical (see repro.engine.kernel)
        grab_plus = 2.0 * cfg.decision_overhead + grab
        me_plus = me + (7.0 * cfg.decision_overhead + post)[:, :, None]

        for array in (grab, me, post, grab_plus, me_plus):
            array.setflags(write=False)
        self.grab = grab
        self.me = me
        self.post = post
        self.grab_plus = grab_plus
        self.me_plus = me_plus
        self.frames = frames
        self.macroblocks = count

    def frame_lists(self, frame: int) -> tuple[list, list]:
        """One frame's fused ``(grab_plus, me_plus)`` rows as Python lists.

        The scalar kernel's tight loop indexes lists, not arrays (array
        scalar extraction is ~5x slower per element); ``tolist()``
        preserves the exact IEEE doubles, so both kernels consume
        identical values.
        """
        return (
            self.grab_plus[frame].tolist(),
            self.me_plus[frame].tolist(),
        )


@lru_cache(maxsize=1024)
def bank_for(config, salt: str) -> FrameTimeBank:
    """The (shared, read-only) bank for one config and rng salt.

    The draws are a pure function of ``(config, salt)`` and the arrays
    are write-protected, so sessions recreated across runs — back-to-
    back benches, engine comparisons, ``reset()``-then-rerun — reuse
    one bank instead of re-drawing the whole clip.  Cleared by
    :func:`repro.sim.runner.reset_caches`.
    """
    from repro.sim.runner import simulation_for

    simulation = simulation_for(config)
    return FrameTimeBank(simulation, simulation._rng(salt))
