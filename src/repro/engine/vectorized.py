"""The vectorized engine: step a whole pool of sessions as numpy batches.

Scalar stepping advances one session at a time, running the
per-macroblock decision loop in Python once per frame.  This engine
advances *all* sessions of a pool together in **waves**: each wave
collects at most one eligible frame per session (only the buffer head
can start — completing it moves the session's ``_free_at``, which gates
the frame behind it), groups the collected jobs by decision kernel and
granularity, and runs each group through
:func:`repro.engine.kernel.batch_decide` as one vectorized pass — a
homogeneous pool of B sessions does its controller table lookups,
deadline comparisons and quality accounting as ``(B, ...)`` array ops.

Ordering contract (what makes this bit-identical to scalar): every
per-session effect — job completion bookkeeping, arrival processing,
the signal pass, renegotiation — is applied in the caller's session
order, and each session's jobs complete in its own FIFO order.  Since
sessions share no state, the *math* is order-free; re-applying the
*effects* in scalar order makes results, records and event logs
indistinguishable from the scalar engine.

Heterogeneous pools still work: each (kernel, granularity) group
batches separately, and a group of one falls back to the scalar kernel
(same bits, no batching overhead).
"""

from __future__ import annotations

import numpy as np

from repro.engine.kernel import batch_decide, scalar_decide


class _Lane:
    """One session's in-flight round state during a batched step."""

    __slots__ = ("session", "allocation", "speed", "limit", "encoded")

    def __init__(self, session, allocation: float, speed: float, limit: float):
        self.session = session
        self.allocation = allocation
        self.speed = speed
        self.limit = limit
        self.encoded: list[int] = []


def _drain(lanes: list[_Lane]) -> None:
    """Encode every eligible frame of every lane, in waves."""
    active = lanes
    while active:
        jobs: list[tuple[_Lane, object]] = []
        still: list[_Lane] = []
        for lane in active:
            job = lane.session.next_job(lane.limit, lane.speed)
            if job is not None:
                jobs.append((lane, job))
                # completing this job may unlock the next buffered frame
                still.append(lane)
        if not jobs:
            break
        groups: dict[tuple[int, int], list[tuple[_Lane, object]]] = {}
        for lane, job in jobs:
            session = lane.session
            key = (id(session._kernel), session.granularity)
            groups.setdefault(key, []).append((lane, job))
        for members in groups.values():
            if len(members) == 1:
                lane, job = members[0]
                session = lane.session
                timing = scalar_decide(
                    session._kernel,
                    session.granularity,
                    *session._bank.frame_lists(job.bank_frame),
                    job.budget,
                )
                session.complete_job(job, timing, lane.speed)
                lane.encoded.append(job.frame)
                continue
            session = members[0][0].session
            kernel = session._kernel
            granularity = session.granularity
            # stack the pre-fused bank rows macroblock-major and hand
            # batch_decide transposed *views*: its internal
            # back-transpose then finds contiguous arrays and skips the
            # relayout copy entirely
            grab = np.stack(
                [lane.session._bank.grab_plus[job.bank_frame] for lane, job in members],
                axis=1,
            ).T
            me = np.stack(
                [lane.session._bank.me_plus[job.bank_frame] for lane, job in members],
                axis=1,
            ).transpose(1, 0, 2)
            budgets = np.asarray([job.budget for _, job in members])
            timings = batch_decide(kernel, granularity, grab, me, budgets)
            for (lane, job), timing in zip(members, timings):
                lane.session.complete_job(job, timing, lane.speed)
                lane.encoded.append(job.frame)
        active = still


def step_sessions(sessions, allocations) -> dict:
    """Step every session one round; return ``{stream_id: SessionStep}``.

    Drop-in batched replacement for the runners' per-session
    ``session.step(allocations[id])`` loop: same validation, same
    arrival/drain semantics, same :class:`SessionStep` values — the
    caller keeps firing observer hooks from its own session loop, so
    event order is untouched.
    """
    lanes: list[_Lane] = []
    for session in sessions:
        allocation = allocations[session.stream_id]
        speed, limit = session.begin_round(allocation)
        lanes.append(_Lane(session, allocation, speed, limit))

    # phase 1: frames whose start falls inside the arrival window
    _drain(lanes)

    # phase 2: arrivals (buffer skips recorded here), then the
    # backlog-drain window for camera-stopped sessions
    drain_lanes: list[_Lane] = []
    arrivals: list[tuple[int | None, bool]] = []
    for lane in lanes:
        arrived, arrival_skipped, drain_limit = lane.session.process_arrival()
        arrivals.append((arrived, arrival_skipped))
        if drain_limit is not None:
            lane.limit = drain_limit
            drain_lanes.append(lane)
    _drain(drain_lanes)

    # phase 3: close every round in session order (signal pass, SLA
    # renegotiation, the step record)
    steps: dict = {}
    for lane, (arrived, arrival_skipped) in zip(lanes, arrivals):
        steps[lane.session.stream_id] = lane.session.finish_round(
            lane.allocation, lane.speed, arrived, arrival_skipped, lane.encoded
        )
    return steps
