"""Controller decision kernels: one scalar, one batched, bit-identical.

A :class:`DecisionKernel` is the pure-math half of the fine-grain
controller for one ``(shape, constraint mode)``: the compiled threshold
table re-indexed *per macroblock* (the ``rows[positions[k]]`` lookup of
:meth:`EncoderSimulation._encode_controlled_frame` hoisted out of the
loop), shared by every session of that shape via an ``lru_cache`` —
finishing the math-vs-state split started by
:func:`repro.sim.encoder_loop.compiled_controller`.

Two executors consume a kernel:

* :func:`scalar_decide` — one frame, pure-Python loop; the reference.
* :func:`batch_decide` — B frames as numpy lanes, one vectorized pass.

Bit-identity contract: both perform the exact same IEEE-754 double
operations in the exact same order per lane —

    ``elapsed += grab[k]``;
    decide (compare against ``row[c] + shift``, highest feasible level,
    else level 0 + degraded);
    ``elapsed += me[k][column]``

where ``grab`` and ``me`` are the **pre-fused** bank arrays
(:class:`repro.engine.bank.FrameTimeBank` folds ``2.0 * overhead`` into
``grab`` and ``7.0 * overhead + post`` into every ``me`` column at
build time, with the very adds the kernels used to perform per call) —
the fused form of ``_decide_and_execute``'s published loop, reduced to
two sequential adds per macroblock with zero per-call precomputation.
Float64 addition and comparison are deterministic functions of their
operands, so identical operand sequences give identical bits.

The kernels also fold the frame's quality statistics (mean / min /
max / churn) into the :class:`FrameTiming` they return: quality levels
are small integers, every partial sum is exactly representable, so the
scalar integer accumulation and the batched ``np.mean`` reductions
produce the same float64 bit for bit.
``tests/engine/test_engine_kernel.py`` asserts all of it exhaustively.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.sim.encoder_loop import FrameTiming, compiled_controller
from repro.video.pipeline import ENCODER_QUALITY_LEVELS


@dataclass(frozen=True)
class DecisionKernel:
    """Per-macroblock decision thresholds for one shape and mode.

    ``rows[k][c]`` is the latest elapsed time (at nominal budget) at
    which level column ``c`` is still feasible when deciding at
    macroblock ``k``; a frame's actual budget enters as a constant
    shift.  ``rows`` (read-only ndarray) feeds the batched executor,
    ``rows_list`` (nested tuples) the scalar one — same values.
    """

    macroblocks: int
    nominal_budget: float
    overhead: float
    constraint_mode: str
    levels: tuple[int, ...]
    rows: np.ndarray
    rows_list: tuple[tuple[float, ...], ...]
    controller_cycles: float
    # thresholds nonincreasing along columns => the feasible set is a
    # prefix and the batch executor can count instead of scanning
    prefix_feasible: bool


@lru_cache(maxsize=256)
def decision_kernel(
    macroblocks: int,
    nominal_budget: float,
    decision_overhead: float,
    constraint_mode: str,
) -> DecisionKernel:
    """Build (or fetch) the kernel for one shape and constraint mode."""
    compiled = compiled_controller(macroblocks, nominal_budget, decision_overhead)
    mode_rows = compiled.rows[constraint_mode]
    positions = compiled.me_positions
    per_k = tuple(tuple(mode_rows[positions[k]]) for k in range(macroblocks))
    rows = np.asarray(per_k, dtype=np.float64)
    rows.setflags(write=False)
    prefix_feasible = bool(np.all(np.diff(rows, axis=1) <= 0))
    return DecisionKernel(
        macroblocks=macroblocks,
        nominal_budget=nominal_budget,
        overhead=decision_overhead,
        constraint_mode=constraint_mode,
        levels=tuple(ENCODER_QUALITY_LEVELS),
        rows=rows,
        rows_list=per_k,
        controller_cycles=9.0 * decision_overhead * macroblocks,
        prefix_feasible=prefix_feasible,
    )


def kernel_for(simulation, constraint_mode: str) -> DecisionKernel:
    """The kernel matching one simulation's shape (cache-shared)."""
    cfg = simulation.config
    return decision_kernel(
        cfg.macroblocks, cfg.nominal_budget, cfg.decision_overhead, constraint_mode
    )


def scalar_decide(
    kernel: DecisionKernel,
    granularity: int,
    grab: list,
    me: list,
    budget: float,
) -> FrameTiming:
    """Encode one frame's timing under the controller (reference path).

    ``grab`` and ``me`` are the pre-fused bank rows (overhead constants
    already folded in — see the module docstring).
    """
    shift = budget - kernel.nominal_budget
    rows = kernel.rows_list
    levels = kernel.levels
    level_count = len(levels)
    count = kernel.macroblocks
    elapsed = 0.0
    qualities: list[int] = []
    append = qualities.append
    degraded = 0
    decisions = 0
    column = 0
    quality = levels[0]
    total = 0
    churn_total = 0
    low = high = levels[0]
    for k in range(count):
        elapsed += grab[k]
        if k % granularity == 0:
            row = rows[k]
            chosen = -1
            for candidate in range(level_count - 1, -1, -1):
                if elapsed <= row[candidate] + shift:
                    chosen = candidate
                    break
            if chosen < 0:
                chosen = 0  # qmin column
                degraded += 1
            new_quality = levels[chosen]
            # quality only changes at decisions, so the stats update
            # here: |q_k - q_{k-1}| is zero inside a granularity window
            if decisions:
                churn_total += abs(new_quality - quality)
                if new_quality < low:
                    low = new_quality
                elif new_quality > high:
                    high = new_quality
            else:
                low = high = new_quality
            column = chosen
            quality = new_quality
            decisions += 1
        append(quality)
        total += quality
        elapsed += me[k][column]
    return FrameTiming(
        cycles=elapsed,
        qualities=qualities,
        controller_cycles=kernel.controller_cycles,
        decisions=decisions,
        degraded=degraded,
        mean_quality=total / count,
        min_quality=low,
        max_quality=high,
        quality_churn=churn_total / (count - 1) if count > 1 else 0.0,
    )


#: Pre-shifted decision thresholds, cached across rounds: a steady
#: fleet re-presents the same (kernel, granularity, budget vector) wave
#: after wave, and building the ``(decisions, columns, lanes)`` table is
#: a large fraction of a batch call.  Keyed by the kernel's defining
#: fields (not ``id``) plus the raw budget bytes, so a hit is
#: value-correct by construction.  Bounded; cleared by
#: :func:`repro.sim.runner.reset_caches`.
_SHIFTED_LIMIT = 8
_shifted_cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
_shifted_lock = threading.Lock()


def _shifted_thresholds(
    kernel: DecisionKernel, granularity: int, budgets: np.ndarray
) -> np.ndarray:
    """The per-lane shifted threshold table for one batch call.

    With prefix-feasible rows the layout is (decision, column, lane) so
    the feasible-count reduction runs along the short column axis in
    contiguous lane-wide strips; otherwise (decision, lane, column) for
    the high-to-low scan fallback.
    """
    key = (
        kernel.macroblocks,
        kernel.nominal_budget,
        kernel.overhead,
        kernel.constraint_mode,
        granularity,
        budgets.tobytes(),
    )
    cached = _shifted_cache.get(key)
    if cached is not None:
        return cached
    shift = budgets - kernel.nominal_budget
    dec_rows = kernel.rows[::granularity]
    if kernel.prefix_feasible:
        shifted = dec_rows[:, :, None] + shift[None, None, :]
    else:
        shifted = dec_rows[:, None, :] + shift[None, :, None]
    shifted.setflags(write=False)
    with _shifted_lock:
        while len(_shifted_cache) >= _SHIFTED_LIMIT:
            _shifted_cache.popitem(last=False)
        _shifted_cache[key] = shifted
    return shifted


def clear_shifted_cache() -> None:
    """Drop the cached threshold tables (part of ``reset_caches``)."""
    with _shifted_lock:
        _shifted_cache.clear()


def batch_decide(
    kernel: DecisionKernel,
    granularity: int,
    grab: np.ndarray,
    me: np.ndarray,
    budgets: np.ndarray,
) -> list[FrameTiming]:
    """Encode B frames' timings as one vectorized pass over macroblocks.

    ``grab`` is ``(B, N)``, ``me`` is ``(B, N, L)`` — both pre-fused
    bank rows — and ``budgets`` is ``(B,)``: one lane per frame; lanes
    never interact.  Returns one :class:`FrameTiming` per lane,
    bit-identical to :func:`scalar_decide` on the same inputs (see
    module docstring).
    """
    lanes = budgets.shape[0]
    count = kernel.macroblocks
    level_count = len(kernel.levels)
    # macroblock-major relayout.  ``ascontiguousarray`` is free when the
    # caller hands over transposed views of macroblock-major arrays
    # (what ``_drain`` does); on lane-major input it is the one copy.
    grab_plus = np.ascontiguousarray(grab.T)
    me_plus = np.ascontiguousarray(me.transpose(1, 0, 2))
    shifted = _shifted_thresholds(kernel, granularity, budgets)
    decisions = shifted.shape[0]

    # the elapsed chain is sequential per lane (every decision reads the
    # running time), so the loop below is per-macroblock — but each step
    # is two fused adds plus, at decision points, one threshold pass
    # over all lanes at once
    elapsed = np.zeros(lanes)
    lane_columns = np.zeros(lanes, dtype=np.intp)
    columns = np.empty((count, lanes), dtype=np.intp)
    degraded = np.zeros(lanes, dtype=np.int64)
    lane_index = np.arange(lanes)
    # flat-offset gather: me_plus[k] is (lanes, levels) contiguous, so
    # row ``lane``'s chosen column lives at ``lane * levels + column``
    lane_offsets = lane_index * level_count
    flat_index = np.empty(lanes, dtype=np.intp)
    prefix = kernel.prefix_feasible
    if prefix:
        feasible = np.empty((level_count, lanes), dtype=bool)
        zero_mask = np.empty(lanes, dtype=bool)
    else:
        feasible = np.empty((lanes, level_count), dtype=bool)
    for k in range(count):
        elapsed += grab_plus[k]
        if k % granularity == 0:
            if prefix:
                # nonincreasing thresholds: feasible columns form a
                # prefix, so the highest one is (count of True) - 1
                np.less_equal(elapsed, shifted[k // granularity], out=feasible)
                np.add.reduce(
                    feasible, axis=0, dtype=np.intp, out=lane_columns
                )
                degraded += np.equal(lane_columns, 0, out=zero_mask)
                np.subtract(lane_columns, 1, out=lane_columns)
                np.maximum(lane_columns, 0, out=lane_columns)
            else:
                np.less_equal(
                    elapsed[:, None], shifted[k // granularity], out=feasible
                )
                found = feasible.any(axis=1)
                # highest feasible column = first True, high-to-low scan
                best = (level_count - 1) - np.argmax(
                    feasible[:, ::-1], axis=1
                )
                lane_columns = np.where(found, best, 0)
                degraded += ~found
        columns[k] = lane_columns
        np.add(lane_columns, lane_offsets, out=flat_index)
        elapsed += me_plus[k].take(flat_index, mode="clip")

    quality_hist = np.asarray(kernel.levels, dtype=np.int64)[columns.T]
    mean_quality = quality_hist.mean(axis=1)
    min_quality = quality_hist.min(axis=1)
    max_quality = quality_hist.max(axis=1)
    if count > 1:
        churn = np.abs(np.diff(quality_hist, axis=1)).mean(axis=1)
    else:
        churn = np.zeros(lanes)
    controller_cycles = kernel.controller_cycles
    return [
        FrameTiming(
            cycles=float(elapsed[lane]),
            qualities=quality_hist[lane],
            controller_cycles=controller_cycles,
            decisions=decisions,
            degraded=int(degraded[lane]),
            mean_quality=float(mean_quality[lane]),
            min_quality=int(min_quality[lane]),
            max_quality=int(max_quality[lane]),
            quality_churn=float(churn[lane]),
        )
        for lane in range(lanes)
    ]
