"""The parallel engine: step independent shards concurrently.

Within a round, shards share nothing — each owns its sessions,
admission ledger and arbiter, and the only cross-shard coupling is the
:class:`~repro.cluster.runner.HeadroomBalancer`, which the cluster
runner evaluates *before* stepping.  That makes the per-round shard
loop embarrassingly parallel: :func:`step_shards` submits every
``shard.step`` to a worker pool and joins them, so the balancer
computation is the round's only synchronization barrier, exactly as in
the scalar schedule.

Within each shard the sessions still step through the vectorized batch
engine (:mod:`repro.engine.vectorized`); the worker pool only adds the
across-shard dimension.

Observer preservation: observers are not required to be thread-safe,
and the scalar engine delivers shard events in shard order.  So while
a shard steps on a worker, its hooks land in a private
:class:`_EventBuffer`; after the join, buffers replay to the real
observers from the main thread, shard by shard — same events, same
order, same thread as scalar.  Phase timing survives batch mode the
same way: when any real observer implements ``on_phase``, shards get a
:class:`_TimedEventBuffer` (which *does* override ``on_phase``), so
``phase_timing_enabled`` inside the shard keeps measuring; otherwise
the plain buffer leaves timing disabled, exactly like scalar.

The pool is a ``concurrent.futures.ThreadPoolExecutor``: shard state is
plain Python objects (cheap to share, expensive to pickle), and the
batched numpy kernels release the GIL inside array ops.  Pure-Python
portions still serialize under the GIL, so the across-shard win is
bounded; the within-shard vectorization is where most of the engine's
speedup comes from (see ``BENCH_engine.json``).
"""

from __future__ import annotations

from functools import partialmethod

#: Hooks a shard can fire while stepping (or holding) a buffer.
_HOOKS = (
    "on_round",
    "on_admit",
    "on_reject",
    "on_preempt",
    "on_migrate",
    "on_renegotiate",
    "on_depart",
    "on_capacity",
)


class _EventBuffer:
    """Records observer hook calls for later main-thread replay.

    Deliberately does **not** define ``on_phase``:
    ``phase_timing_enabled`` would otherwise see a phase listener and
    make every shard pay for ``perf_counter`` calls nobody reads.
    """

    def __init__(self) -> None:
        self.calls: list[tuple[str, tuple, dict]] = []

    def _record(self, _hook: str, *args, **kwargs) -> None:
        self.calls.append((_hook, args, kwargs))

    def replay(self, observers) -> None:
        """Deliver the buffered calls to the real observers, in order."""
        for hook, args, kwargs in self.calls:
            for observer in observers:
                getattr(observer, hook)(*args, **kwargs)
        self.calls.clear()


for _hook in _HOOKS:
    setattr(_EventBuffer, _hook, partialmethod(_EventBuffer._record, _hook))
del _hook


class _TimedEventBuffer(_EventBuffer):
    """Buffer variant that keeps the shard's phase timing alive."""

    def on_phase(self, *args, **kwargs) -> None:
        self._record("on_phase", *args, **kwargs)


def step_shards(executor, shards, round_index, capacity_of, observers) -> None:
    """Step every shard concurrently; replay events in shard order.

    ``capacity_of`` maps shard id to this round's effective capacity
    override (``None`` = the shard's own pool), i.e. the balancer's
    output — computed before this call, making it the only barrier.
    """
    from repro.serving.observers import phase_timing_enabled  # circular-safe

    buffer_type = (
        _TimedEventBuffer if phase_timing_enabled(observers) else _EventBuffer
    )
    buffers = [buffer_type() for _ in shards]
    for shard, buffer in zip(shards, buffers):
        shard.observers = (buffer,)
    try:
        futures = [
            executor.submit(shard.step, round_index, capacity_of(shard))
            for shard in shards
        ]
        # join every future even if one failed, so no worker is left
        # touching a shard we are about to rewire
        errors = []
        for future in futures:
            try:
                future.result()
            except BaseException as error:  # re-raised below
                errors.append(error)
    finally:
        for shard in shards:
            shard.observers = observers
    if errors:
        raise errors[0]
    for buffer in buffers:
        buffer.replay(observers)
