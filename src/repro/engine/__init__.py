"""Execution engines: scalar reference, vectorized batch, parallel shards.

The serving runners (:class:`~repro.streams.fleet.FleetRunner`,
:class:`~repro.cluster.shard.Shard`,
:class:`~repro.cluster.runner.ClusterRunner`) take an ``engine`` knob
selecting how sessions are advanced each scheduling round:

* ``"scalar"`` — the reference path: each session steps itself, the
  per-macroblock controller decision loop runs in pure Python.
* ``"vectorized"`` — all sessions of a pool step as numpy batches: the
  controller table lookups, elapsed-cycle updates and quality
  accounting run as array operations across sessions (see
  :mod:`repro.engine.vectorized`).  Bit-identical to ``"scalar"`` —
  the batched kernel performs the exact same IEEE-double operations in
  the exact same order per lane (asserted across every registered
  scenario generator by ``tests/engine/``).
* ``"parallel"`` — vectorized, plus independent shards of a cluster
  step concurrently on a worker pool, synchronizing only at the
  :class:`~repro.cluster.runner.HeadroomBalancer` barrier (see
  :mod:`repro.engine.parallel`).  On a single pool (fleet) it degrades
  to ``"vectorized"``.

The split finishes what :func:`repro.sim.encoder_loop.compiled_controller`
started: controller *math* (tables, thresholds — here, as kernels) is
separated from session *state* (buffers, deadlines, records — still
owned by :class:`~repro.streams.session.StreamSession`), so one
decision kernel serves any number of sessions in any execution shape.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Engine names accepted by the runners and by ``ServingSpec.engine``.
ENGINES = ("scalar", "vectorized", "parallel")


def validate_engine(name: str) -> str:
    """Check an engine name, returning it (for constructor one-liners)."""
    if name not in ENGINES:
        raise ConfigurationError(
            f"engine: must be one of {ENGINES}, got {name!r}"
        )
    return name


__all__ = ["ENGINES", "validate_engine"]
