"""Analytic rate-distortion / PSNR model.

The controller never looks at pixels — it sees times and deadlines —
but the paper's Figs. 8/9 plot PSNR, so the encoder substitute must map
(content, motion-estimation quality, allocated bits) to a PSNR value
with the right monotonicities:

* higher ME quality -> better motion compensation -> smaller residual
  -> higher PSNR (saturating in q);
* higher motion -> harder compensation -> lower PSNR and a stronger
  dependence on q;
* more bits -> higher PSNR (classic rate-distortion decay);
* skipped frame -> the decoder redisplays the previous frame, so PSNR
  against the input collapses (paper: "e.g. lower than 25"), the more
  so the higher the motion.

The functional forms are standard encoder-modelling fare:
``MSE = residual_variance / (1 + (bpp/knee)^rho)`` with the residual
variance shaped by a motion-compensation efficiency
``eta(q, m) = (eta0 - eta_m * m) * s(q)``, ``s`` saturating in ``q``.
Constants are calibrated to land in the paper's 30-44 dB band at the
paper's 1.1 Mbit/s, 25 fps, PAL-SD operating point; the *shapes* are
what the reproduction asserts (EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.video.content import FrameContent


@dataclass(frozen=True)
class RateDistortionModel:
    """PSNR model constants (see module docstring)."""

    mc_efficiency_base: float = 0.95
    mc_motion_penalty: float = 0.25
    quality_saturation: float = 1.8
    quality_floor: float = 0.8
    intra_residual_fraction: float = 0.55
    rate_knee_bpp: float = 0.04
    rate_exponent: float = 1.5
    skip_mse_base: float = 0.65
    skip_mse_motion_slope: float = 1.5
    peak: float = 255.0
    min_psnr: float = 12.0
    max_psnr: float = 50.0

    def __post_init__(self) -> None:
        if not 0 < self.mc_efficiency_base <= 1:
            raise ConfigurationError("mc_efficiency_base must be in (0, 1]")
        if self.rate_knee_bpp <= 0 or self.rate_exponent <= 0:
            raise ConfigurationError("rate curve parameters must be positive")

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------

    def quality_gain(self, quality) -> np.ndarray | float:
        """``s(q) = 1 - floor * exp(-q / saturation)`` — saturating in q."""
        q = np.asarray(quality, dtype=np.float64)
        gain = 1.0 - self.quality_floor * np.exp(-q / self.quality_saturation)
        return gain if gain.ndim else float(gain)

    def mc_efficiency(self, quality, motion_activity: float) -> np.ndarray | float:
        """``eta(q, m)`` — fraction of texture energy removed by MC."""
        ceiling = self.mc_efficiency_base - self.mc_motion_penalty * motion_activity
        return ceiling * self.quality_gain(quality)

    def residual_variance(
        self, content: FrameContent, qualities, intra: bool = False
    ) -> float:
        """Residual energy after prediction, averaged over macroblocks.

        ``qualities`` is a scalar level or a per-macroblock array; the
        intra path ignores it (no motion compensation on I-frames).
        """
        if intra or content.is_iframe:
            return content.texture_variance * self.intra_residual_fraction
        efficiency = self.mc_efficiency(qualities, content.motion_activity)
        return float(content.texture_variance * np.mean(1.0 - efficiency))

    def rate_factor(self, bits: float, pixels: int) -> float:
        """Distortion shrink factor from spending ``bits`` on ``pixels``."""
        if pixels <= 0:
            raise ConfigurationError("pixels must be positive")
        bpp = max(bits, 0.0) / pixels
        return 1.0 + (bpp / self.rate_knee_bpp) ** self.rate_exponent

    def _to_psnr(self, mse: float) -> float:
        # scalar math: this sits on the per-frame hot path of every
        # engine, and numpy ufunc dispatch on Python floats costs more
        # than the arithmetic
        mse = max(mse, 1e-6)
        psnr = 10.0 * math.log10(self.peak * self.peak / mse)
        return min(max(psnr, self.min_psnr), self.max_psnr)

    # ------------------------------------------------------------------
    # the three frame outcomes
    # ------------------------------------------------------------------

    def encoded_psnr(
        self, content: FrameContent, qualities, bits: float, pixels: int
    ) -> float:
        """PSNR of a frame encoded with the given ME qualities and bits."""
        variance = self.residual_variance(content, qualities)
        mse = variance / self.rate_factor(bits, pixels)
        return self._to_psnr(mse)

    def skip_psnr(self, content: FrameContent) -> float:
        """PSNR when the frame is skipped (previous frame redisplayed).

        The error is the inter-frame difference itself; it grows with
        motion.  Calibrated to fall below 25 dB as in the paper.
        """
        mse = content.texture_variance * (
            self.skip_mse_base + self.skip_mse_motion_slope * content.motion_activity
        )
        return self._to_psnr(mse)

    def quality_for_target_psnr(
        self, content: FrameContent, bits: float, pixels: int, target_psnr: float
    ) -> int | None:
        """Smallest integer quality reaching ``target_psnr`` (None if none).

        Convenience inverse used by examples and tests.
        """
        for q in range(0, 8):
            if self.encoded_psnr(content, q, bits, pixels) >= target_psnr:
                return q
        return None
