"""Pixel-level synthetic video.

Generates actual frames (uint8 luma arrays) with controllable motion
magnitude and texture energy, coherent with the content descriptors the
analytic model consumes.  Scenes are a textured background translating
with subpixel-free integer motion plus independently moving foreground
blobs; a scene cut redraws everything from a new seed.

Used by the pixel codec demo and the cross-validation tests that check
the analytic rate-distortion model's monotonicities against a *real*
(toy) encoder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SyntheticScene:
    """Parameters of one generated scene."""

    width: int = 96
    height: int = 96
    motion: float = 0.4
    texture: float = 0.5
    objects: int = 3

    def __post_init__(self) -> None:
        if self.width % 16 or self.height % 16:
            raise ConfigurationError("dimensions must be multiples of 16")
        if not 0.0 <= self.motion <= 1.0:
            raise ConfigurationError("motion must be in [0, 1]")
        if not 0.0 <= self.texture <= 1.0:
            raise ConfigurationError("texture must be in [0, 1]")


def _textured_background(
    rng: np.random.Generator, height: int, width: int, texture: float
) -> np.ndarray:
    """A smooth gradient plus band-limited noise scaled by ``texture``.

    Generated on a double-size canvas so the scene can pan within it.
    """
    canvas_h, canvas_w = 2 * height, 2 * width
    ys = np.linspace(0, 1, canvas_h)[:, None]
    xs = np.linspace(0, 1, canvas_w)[None, :]
    gradient = 96.0 + 64.0 * (0.6 * ys + 0.4 * xs)
    noise = rng.normal(0.0, 1.0, (canvas_h // 4, canvas_w // 4))
    noise = np.kron(noise, np.ones((4, 4)))  # block-correlated texture
    fine = rng.normal(0.0, 1.0, (canvas_h, canvas_w))
    textured = gradient + texture * (28.0 * noise + 10.0 * fine)
    return textured


def generate_scene_frames(
    scene: SyntheticScene, frames: int, seed: int = 0
) -> list[np.ndarray]:
    """Render ``frames`` consecutive frames of one scene.

    Motion magnitude scales both the background pan speed and the
    foreground blob velocities (in whole pixels per frame, so a perfect
    motion search can fully compensate the background).
    """
    if frames <= 0:
        raise ConfigurationError("frames must be positive")
    rng = np.random.default_rng(seed)
    background = _textured_background(rng, scene.height, scene.width, scene.texture)
    max_speed = 1 + int(round(6 * scene.motion))

    pan = rng.integers(-max_speed, max_speed + 1, size=2)
    if not pan.any():
        pan = np.array([1, 0])
    blobs = []
    for _ in range(scene.objects):
        size = int(rng.integers(8, 20))
        position = rng.integers(0, [scene.height - size, scene.width - size])
        velocity = rng.integers(-max_speed, max_speed + 1, size=2)
        intensity = float(rng.uniform(30, 200))
        blobs.append([position.astype(float), velocity.astype(float), size, intensity])

    out: list[np.ndarray] = []
    offset = np.array([scene.height // 2, scene.width // 2], dtype=float)
    for t in range(frames):
        top = int(offset[0]) % scene.height
        left = int(offset[1]) % scene.width
        frame = background[top : top + scene.height, left : left + scene.width].copy()
        for blob in blobs:
            position, velocity, size, intensity = blob
            y = int(position[0]) % (scene.height - size)
            x = int(position[1]) % (scene.width - size)
            frame[y : y + size, x : x + size] = (
                0.35 * frame[y : y + size, x : x + size] + 0.65 * intensity
            )
            blob[0] = position + velocity
        out.append(np.clip(frame, 0, 255).astype(np.uint8))
        offset += pan
    return out


def generate_video(
    scenes: list[SyntheticScene],
    frames_per_scene: int,
    seed: int = 0,
) -> tuple[list[np.ndarray], list[int]]:
    """Concatenate scenes; returns (frames, scene-start indices)."""
    all_frames: list[np.ndarray] = []
    starts: list[int] = []
    for index, scene in enumerate(scenes):
        starts.append(len(all_frames))
        all_frames.extend(
            generate_scene_frames(scene, frames_per_scene, seed=seed + 1000 * index)
        )
    return all_frames, starts
