"""Pixel-domain PSNR (used by the pixel codec and its tests).

The analytic encoder models PSNR; here it is *measured*:
``PSNR = 10 log10(peak^2 / MSE)`` between two frames.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def mse(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Mean squared error between two equally-shaped frames."""
    reference = np.asarray(reference, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    if reference.shape != candidate.shape:
        raise ConfigurationError(
            f"shape mismatch: {reference.shape} vs {candidate.shape}"
        )
    return float(np.mean((reference - candidate) ** 2))


def psnr(reference: np.ndarray, candidate: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB; +inf for identical frames."""
    error = mse(reference, candidate)
    if error == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / error))
