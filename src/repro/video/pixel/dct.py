"""8x8 block DCT (the codec's transform stage).

Type-II orthonormal DCT applied independently to every 8x8 block, as in
MPEG-4 — implemented with scipy when available, with a small matrix
fallback so the package stays importable without scipy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

BLOCK = 8

try:  # scipy is in the test environment; the fallback keeps imports safe
    from scipy.fft import dctn as _dctn, idctn as _idctn

    def _dct2(block: np.ndarray) -> np.ndarray:
        return _dctn(block, norm="ortho")

    def _idct2(block: np.ndarray) -> np.ndarray:
        return _idctn(block, norm="ortho")

except ImportError:  # pragma: no cover - exercised only without scipy
    def _dct_matrix(n: int = BLOCK) -> np.ndarray:
        k = np.arange(n)[:, None]
        i = np.arange(n)[None, :]
        matrix = np.cos(np.pi * (2 * i + 1) * k / (2 * n))
        matrix *= np.sqrt(2.0 / n)
        matrix[0] /= np.sqrt(2.0)
        return matrix

    _DCT_M = _dct_matrix()

    def _dct2(block: np.ndarray) -> np.ndarray:
        return _DCT_M @ block @ _DCT_M.T

    def _idct2(block: np.ndarray) -> np.ndarray:
        return _DCT_M.T @ block @ _DCT_M


def _as_blocks(frame: np.ndarray) -> np.ndarray:
    """View an (H, W) frame as (H/8, W/8, 8, 8) blocks."""
    height, width = frame.shape
    if height % BLOCK or width % BLOCK:
        raise ConfigurationError(
            f"frame dimensions must be multiples of {BLOCK}, got {frame.shape}"
        )
    return (
        frame.reshape(height // BLOCK, BLOCK, width // BLOCK, BLOCK)
        .swapaxes(1, 2)
    )


def _from_blocks(blocks: np.ndarray) -> np.ndarray:
    rows, cols, _, _ = blocks.shape
    return blocks.swapaxes(1, 2).reshape(rows * BLOCK, cols * BLOCK)


def blockwise_dct(frame: np.ndarray) -> np.ndarray:
    """Forward 8x8 DCT over a whole frame (float64 output)."""
    blocks = _as_blocks(np.asarray(frame, dtype=np.float64))
    out = np.empty_like(blocks)
    for r in range(blocks.shape[0]):
        for c in range(blocks.shape[1]):
            out[r, c] = _dct2(blocks[r, c])
    return _from_blocks(out)


def blockwise_idct(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 8x8 DCT over a whole frame of coefficients."""
    blocks = _as_blocks(np.asarray(coefficients, dtype=np.float64))
    out = np.empty_like(blocks)
    for r in range(blocks.shape[0]):
        for c in range(blocks.shape[1]):
            out[r, c] = _idct2(blocks[r, c])
    return _from_blocks(out)
