"""The toy encoder/decoder: motion search + DCT + quantization.

One class drives the whole per-frame pipeline of
:mod:`repro.video.pixel`; the decoder is implicit (the encoder
reconstructs exactly what a decoder would, and uses it as the next
reference — closed-loop prediction, like the paper's
``Inverse_Quantize -> Inverse_DCT -> Reconstruct`` chain in Fig. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.video.pixel.bits import estimate_frame_bits, estimate_motion_bits
from repro.video.pixel.dct import blockwise_dct, blockwise_idct
from repro.video.pixel.motion import motion_compensate, motion_search
from repro.video.pixel.quant import dequantize, quantize, step_for_quantizer
from repro.video.psnr import psnr


@dataclass(frozen=True)
class EncodedFrame:
    """Everything the toy codec produced for one frame."""

    index: int
    is_iframe: bool
    quality: int
    quantizer: int
    bits: float
    psnr: float
    reconstructed: np.ndarray
    motion_vectors: np.ndarray | None

    @property
    def mean_absolute_motion(self) -> float:
        if self.motion_vectors is None:
            return 0.0
        return float(np.mean(np.abs(self.motion_vectors)))


class ToyVideoCodec:
    """A stateful encoder over a frame sequence.

    Parameters
    ----------
    quantizer:
        MPEG-style quantizer parameter (1..31); fixed here — rate
        control experiments live in the analytic model.
    """

    def __init__(self, quantizer: int = 8):
        self.quantizer = quantizer
        self.step = step_for_quantizer(quantizer)
        self._reference: np.ndarray | None = None
        self._frames_encoded = 0

    def reset(self) -> None:
        self._reference = None
        self._frames_encoded = 0

    def encode_frame(
        self, frame: np.ndarray, quality: int, force_iframe: bool = False
    ) -> EncodedFrame:
        """Encode one frame; the first (or a forced) frame is intra."""
        original = np.asarray(frame, dtype=np.float64)
        intra = force_iframe or self._reference is None
        if intra:
            vectors = None
            prediction = np.zeros_like(original)
        else:
            vectors = motion_search(original, self._reference, quality)
            prediction = motion_compensate(self._reference, vectors)
        residual = original - prediction
        levels = quantize(blockwise_dct(residual), self.step)
        reconstructed_residual = blockwise_idct(dequantize(levels, self.step))
        reconstructed = np.clip(prediction + reconstructed_residual, 0, 255)

        bits = estimate_frame_bits(levels)
        if vectors is not None:
            bits += estimate_motion_bits(vectors)
        quality_psnr = psnr(original, reconstructed)

        self._reference = reconstructed
        encoded = EncodedFrame(
            index=self._frames_encoded,
            is_iframe=intra,
            quality=quality,
            quantizer=self.quantizer,
            bits=bits,
            psnr=quality_psnr,
            reconstructed=reconstructed,
            motion_vectors=vectors,
        )
        self._frames_encoded += 1
        return encoded

    def encode_sequence(
        self, frames, qualities, scene_starts=()
    ) -> list[EncodedFrame]:
        """Encode a whole sequence with per-frame quality levels."""
        frames = list(frames)
        if isinstance(qualities, int):
            qualities = [qualities] * len(frames)
        if len(qualities) != len(frames):
            raise ConfigurationError(
                f"{len(frames)} frames but {len(qualities)} quality levels"
            )
        starts = set(scene_starts)
        return [
            self.encode_frame(frame, quality, force_iframe=(index in starts))
            for index, (frame, quality) in enumerate(zip(frames, qualities))
        ]
