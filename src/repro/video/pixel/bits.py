"""Bit-cost estimation for quantized coefficients.

A first-order entropy-coding proxy instead of a real arithmetic coder:
each nonzero quantized level costs ~(2*log2(1+|level|) + 2) bits (sign,
magnitude, run separator), each motion vector component ~log2(1+|v|)+1
bits, plus a small per-block overhead.  Monotone in coefficient energy
and in quantizer fineness — the properties rate control relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: Per-8x8-block header cost (coded-block pattern share, escape codes).
BLOCK_OVERHEAD_BITS = 2.0


def estimate_block_bits(levels: np.ndarray) -> float:
    """Bits to code one array of quantized levels."""
    levels = np.asarray(levels)
    magnitudes = np.abs(levels[levels != 0])
    if magnitudes.size == 0:
        return BLOCK_OVERHEAD_BITS
    payload = float(np.sum(2.0 * np.log2(1.0 + magnitudes) + 2.0))
    return BLOCK_OVERHEAD_BITS + payload


def estimate_frame_bits(levels: np.ndarray, block: int = 8) -> float:
    """Bits for a whole frame of quantized coefficients."""
    height, width = levels.shape
    if height % block or width % block:
        raise ConfigurationError("levels shape must be a multiple of the block size")
    total = 0.0
    for y in range(0, height, block):
        for x in range(0, width, block):
            total += estimate_block_bits(levels[y : y + block, x : x + block])
    return total


def estimate_motion_bits(vectors: np.ndarray) -> float:
    """Bits to code the motion field (differentially, roughly)."""
    magnitudes = np.abs(np.asarray(vectors, dtype=np.float64))
    return float(np.sum(np.log2(1.0 + magnitudes) + 1.0))
