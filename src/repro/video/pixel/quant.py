"""Uniform quantization of DCT coefficients (the codec's rate knob)."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def step_for_quantizer(quantizer: int) -> float:
    """Map an MPEG-style quantizer parameter (1..31) to a step size."""
    if not 1 <= quantizer <= 31:
        raise ConfigurationError(f"quantizer must be in 1..31, got {quantizer}")
    return 2.0 * quantizer


def quantize(coefficients: np.ndarray, step: float) -> np.ndarray:
    """Uniform mid-tread quantization to integer levels."""
    if step <= 0:
        raise ConfigurationError(f"quantization step must be positive, got {step}")
    return np.round(np.asarray(coefficients, dtype=np.float64) / step).astype(np.int32)


def dequantize(levels: np.ndarray, step: float) -> np.ndarray:
    """Reconstruction: level * step."""
    if step <= 0:
        raise ConfigurationError(f"quantization step must be positive, got {step}")
    return np.asarray(levels, dtype=np.float64) * step
