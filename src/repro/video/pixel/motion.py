"""Block motion estimation — the quality-parameterized action.

Full-search block matching on 16x16 macroblocks.  The *quality level*
selects the search range in pixels: level 0 searches nothing (zero
vector — the "I'm in a hurry" mode whose Fig. 5 cost is 215 cycles),
level 7 searches +-12 pixels exhaustively (the 1.5 Mcycle worst case).
Execution cost therefore grows with quality exactly as the paper's
tables describe: candidates = (2r+1)^2 per macroblock.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

MACROBLOCK = 16

#: Search range (pixels) per quality level 0..7.
SEARCH_RANGES: tuple[int, ...] = (0, 1, 2, 4, 5, 6, 8, 12)


def search_range_for_quality(quality: int) -> int:
    if not 0 <= quality < len(SEARCH_RANGES):
        raise ConfigurationError(f"quality must be in 0..7, got {quality}")
    return SEARCH_RANGES[quality]


def candidates_for_quality(quality: int) -> int:
    """How many displacement candidates a macroblock search evaluates."""
    radius = search_range_for_quality(quality)
    return (2 * radius + 1) ** 2


def motion_search(
    current: np.ndarray, reference: np.ndarray, quality: int
) -> np.ndarray:
    """Per-macroblock motion vectors minimizing SAD.

    Returns an array of shape (rows, cols, 2) of (dy, dx) displacements
    into the reference frame.
    """
    current = np.asarray(current, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if current.shape != reference.shape:
        raise ConfigurationError("current and reference must have the same shape")
    height, width = current.shape
    if height % MACROBLOCK or width % MACROBLOCK:
        raise ConfigurationError(
            f"dimensions must be multiples of {MACROBLOCK}, got {current.shape}"
        )
    radius = search_range_for_quality(quality)
    rows, cols = height // MACROBLOCK, width // MACROBLOCK
    vectors = np.zeros((rows, cols, 2), dtype=np.int32)
    for r in range(rows):
        for c in range(cols):
            y0, x0 = r * MACROBLOCK, c * MACROBLOCK
            block = current[y0 : y0 + MACROBLOCK, x0 : x0 + MACROBLOCK]
            best_sad = np.inf
            best = (0, 0)
            for dy in range(-radius, radius + 1):
                yy = y0 + dy
                if yy < 0 or yy + MACROBLOCK > height:
                    continue
                for dx in range(-radius, radius + 1):
                    xx = x0 + dx
                    if xx < 0 or xx + MACROBLOCK > width:
                        continue
                    candidate = reference[yy : yy + MACROBLOCK, xx : xx + MACROBLOCK]
                    sad = float(np.abs(block - candidate).sum())
                    if sad < best_sad:
                        best_sad = sad
                        best = (dy, dx)
            vectors[r, c] = best
    return vectors


def motion_compensate(reference: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Build the predicted frame from a reference and motion vectors."""
    reference = np.asarray(reference, dtype=np.float64)
    rows, cols, _ = vectors.shape
    predicted = np.empty_like(reference)
    for r in range(rows):
        for c in range(cols):
            dy, dx = int(vectors[r, c, 0]), int(vectors[r, c, 1])
            y0, x0 = r * MACROBLOCK, c * MACROBLOCK
            predicted[y0 : y0 + MACROBLOCK, x0 : x0 + MACROBLOCK] = reference[
                y0 + dy : y0 + dy + MACROBLOCK, x0 + dx : x0 + dx + MACROBLOCK
            ]
    return predicted
