"""A real pixel-level toy codec.

The analytic encoder (rate-distortion formulas) carries the 582-frame
reproduction; this package demonstrates that the quality-level
mechanism it models is real: a complete block-based encoder where the
*quality level is the motion-search range* — exactly the knob the
paper's ``Motion_Estimate`` action exposes.

Pipeline per 16x16 macroblock: full-search motion estimation against
the reference frame (range grows with q), residual 8x8 DCT, uniform
quantization, bit-cost estimation, dequantization + inverse DCT +
reconstruction.  I-frames skip prediction.

Used by ``examples/pixel_codec_demo.py`` and the cross-validation tests
in ``tests/video/test_pixel_codec.py``.
"""

from repro.video.pixel.bits import estimate_block_bits, estimate_frame_bits
from repro.video.pixel.codec import EncodedFrame, ToyVideoCodec
from repro.video.pixel.dct import blockwise_dct, blockwise_idct
from repro.video.pixel.motion import SEARCH_RANGES, motion_compensate, motion_search
from repro.video.pixel.quant import dequantize, quantize, step_for_quantizer

__all__ = [
    "EncodedFrame",
    "SEARCH_RANGES",
    "ToyVideoCodec",
    "blockwise_dct",
    "blockwise_idct",
    "dequantize",
    "estimate_block_bits",
    "estimate_frame_bits",
    "motion_compensate",
    "motion_search",
    "quantize",
    "step_for_quantizer",
]
