"""Bit-rate control (virtual buffer model).

The paper fixes a target bitrate of 1.1 Mbit/s at 25 frame/s.  A
VM5-style virtual-buffer rate controller tracks how far cumulative
spending deviates from the target and adjusts per-frame allocations:

* the virtual buffer fullness grows by ``spent - target`` each frame;
* the next allocation corrects a fraction of the imbalance;
* I-frames receive a boost (they cannot borrow from prediction);
* a *skipped* frame spends almost nothing — its unused budget drains
  the virtual buffer, and subsequent frames are allocated more bits.

That last point reproduces the paper's observation on Figs. 8/9: "the
bits corresponding to skipped frames are used to achieve better
quality", which is why the constant-quality encoder's PSNR beats the
controlled encoder *inside* skip regions (while actually halving the
displayed frame rate there).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RateControlConfig:
    """Targets and dynamics of the virtual-buffer controller."""

    bitrate: float = 1_100_000.0
    fps: float = 25.0
    iframe_boost: float = 2.0
    reaction: float = 0.5
    min_allocation_fraction: float = 0.3
    max_allocation_fraction: float = 3.0
    skip_flag_bits: float = 64.0

    def __post_init__(self) -> None:
        if self.bitrate <= 0 or self.fps <= 0:
            raise ConfigurationError("bitrate and fps must be positive")
        if not 0.0 < self.reaction <= 1.0:
            raise ConfigurationError("reaction must be in (0, 1]")
        if not 0 < self.min_allocation_fraction <= self.max_allocation_fraction:
            raise ConfigurationError("allocation fractions out of order")

    @property
    def target_bits_per_frame(self) -> float:
        return self.bitrate / self.fps


class VirtualBufferRateController:
    """Stateful per-frame bit allocator."""

    def __init__(self, config: RateControlConfig | None = None):
        self.config = config if config is not None else RateControlConfig()
        self.fullness = 0.0
        self.total_spent = 0.0
        self.frames_committed = 0

    @property
    def target(self) -> float:
        return self.config.target_bits_per_frame

    def allocate(self, is_iframe: bool = False) -> float:
        """Bits granted to the next frame."""
        base = self.target - self.config.reaction * self.fullness
        if is_iframe:
            base *= self.config.iframe_boost
        low = self.config.min_allocation_fraction * self.target
        high = self.config.max_allocation_fraction * self.target
        return float(min(max(base, low), high))

    def commit(self, bits_spent: float) -> None:
        """Record an encoded frame's actual spending."""
        if bits_spent < 0:
            raise ConfigurationError("bits_spent must be >= 0")
        self.fullness += bits_spent - self.target
        self.total_spent += bits_spent
        self.frames_committed += 1

    def commit_skip(self) -> None:
        """Record a skipped frame: only a skip flag goes in the stream."""
        self.commit(self.config.skip_flag_bits)

    def achieved_bitrate(self) -> float:
        """Mean bits/s over committed frames."""
        if self.frames_committed == 0:
            return 0.0
        return self.total_spent / self.frames_committed * self.config.fps
