"""Analytic frame encoder: content + qualities + rate control -> bits, PSNR.

Combines the rate-distortion model and the virtual-buffer rate
controller into the per-frame encoder the simulation loop calls.  The
*timing* side of encoding (cycles consumed) lives in the platform
simulator; this module owns only the signal side (bits and PSNR), so
the two concerns stay independently testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.video.content import FrameContent
from repro.video.ratecontrol import VirtualBufferRateController
from repro.video.rd_model import RateDistortionModel

#: PAL SD frame: 720 x 576 luma pixels (1620 macroblocks of 256 pixels).
DEFAULT_FRAME_PIXELS = 720 * 576


@dataclass(frozen=True)
class FrameOutcome:
    """Signal-side result for one (encoded or skipped) frame."""

    frame_index: int
    psnr: float
    bits: float
    mean_quality: float
    is_iframe: bool
    skipped: bool


class AnalyticEncoder:
    """Per-frame bits/PSNR production (the encoder's signal path).

    Parameters
    ----------
    rd_model:
        The rate-distortion model.
    rate_controller:
        Stateful bit allocator (one per run).
    pixels:
        Luma pixels per frame.
    rng:
        Source of the small spending noise (a real encoder never hits
        its allocation exactly; quantizer steps are discrete).
    bits_noise:
        Log-normal sigma of spending around the allocation.
    """

    def __init__(
        self,
        rd_model: RateDistortionModel | None = None,
        rate_controller: VirtualBufferRateController | None = None,
        pixels: int = DEFAULT_FRAME_PIXELS,
        rng: np.random.Generator | None = None,
        bits_noise: float = 0.05,
    ) -> None:
        if pixels <= 0:
            raise ConfigurationError("pixels must be positive")
        self.rd_model = rd_model if rd_model is not None else RateDistortionModel()
        self.rate_controller = (
            rate_controller if rate_controller is not None else VirtualBufferRateController()
        )
        self.pixels = pixels
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.bits_noise = bits_noise

    def encode_frame(
        self,
        content: FrameContent,
        qualities,
        mean_quality: float | None = None,
    ) -> FrameOutcome:
        """Encode one frame at the given per-macroblock (or scalar) qualities.

        Callers that already know the frame's mean quality (the stream
        sessions carry it on their :class:`FrameRecord`) pass it in to
        skip the redundant reduction; quality levels are integers, so
        the precomputed value is bit-equal to the one computed here.
        """
        allocation = self.rate_controller.allocate(is_iframe=content.is_iframe)
        spent = allocation
        if self.bits_noise > 0:
            spent = float(
                allocation * np.exp(self.rng.normal(0.0, self.bits_noise))
            )
        psnr = self.rd_model.encoded_psnr(content, qualities, spent, self.pixels)
        self.rate_controller.commit(spent)
        if mean_quality is None:
            mean_quality = float(
                np.mean(np.asarray(qualities, dtype=np.float64))
            )
        return FrameOutcome(
            frame_index=content.index,
            psnr=psnr,
            bits=spent,
            mean_quality=mean_quality,
            is_iframe=content.is_iframe,
            skipped=False,
        )

    def skip_frame(self, content: FrameContent) -> FrameOutcome:
        """Account a skipped frame (previous frame redisplayed)."""
        self.rate_controller.commit_skip()
        return FrameOutcome(
            frame_index=content.index,
            psnr=self.rd_model.skip_psnr(content),
            bits=self.rate_controller.config.skip_flag_bits,
            mean_quality=float("nan"),
            is_iframe=content.is_iframe,
            skipped=True,
        )
