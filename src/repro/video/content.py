"""Synthetic camera benchmark content.

Substitute for the paper's private 582-frame benchmark: "9 sequences
produced by a camera every P = 320 Mcycle".  The figures' dynamics are
driven by the content's statistics, which we model explicitly:

* per-sequence mean *motion activity* (drives Motion_Estimate effort
  and motion-compensation difficulty),
* per-sequence *texture variance* (drives residual energy and PSNR),
* scene cuts at sequence boundaries (encoded as I-frames — the paper's
  "eight jumps corresponding to changes of video sequences"),
* two deliberately high-motion sequences that overload constant-quality
  encoders (the paper's "two bursts of jumps corresponding to frame
  skips").

Per-frame motion follows an AR(1) process around the sequence mean so
load is bursty but autocorrelated, like real video.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SequenceSpec:
    """Statistical description of one camera sequence."""

    name: str
    frames: int
    motion: float
    texture: float
    motion_wobble: float = 0.07
    motion_persistence: float = 0.85

    def __post_init__(self) -> None:
        if self.frames <= 0:
            raise ConfigurationError(f"sequence {self.name!r} must have frames > 0")
        if not 0.0 <= self.motion <= 1.0:
            raise ConfigurationError(f"motion must be in [0, 1], got {self.motion}")
        if self.texture <= 0:
            raise ConfigurationError(f"texture variance must be positive")
        if not 0.0 <= self.motion_persistence < 1.0:
            raise ConfigurationError("motion_persistence must be in [0, 1)")


@dataclass(frozen=True)
class FrameContent:
    """Per-frame content descriptor consumed by timing and PSNR models."""

    index: int
    sequence: int
    frame_in_sequence: int
    is_scene_start: bool
    motion_activity: float
    texture_variance: float

    @property
    def is_iframe(self) -> bool:
        """Scene starts are intra-coded (I-frames)."""
        return self.is_scene_start


def paper_benchmark_sequences() -> tuple[SequenceSpec, ...]:
    """The 9-sequence, 582-frame benchmark layout (DESIGN.md 3.3).

    Sequences 3 and 6 (0-based) are the high-motion segments that
    produce the two frame-skip bursts for constant-quality encoders.
    """
    specs = (
        SequenceSpec("interview", 60, motion=0.25, texture=350.0),
        SequenceSpec("street_pan", 70, motion=0.35, texture=420.0),
        SequenceSpec("weather_map", 55, motion=0.20, texture=300.0),
        SequenceSpec("football", 75, motion=0.78, texture=520.0),
        SequenceSpec("newsroom", 65, motion=0.30, texture=380.0),
        SequenceSpec("traffic", 60, motion=0.40, texture=450.0),
        SequenceSpec("concert_crowd", 72, motion=0.82, texture=560.0),
        SequenceSpec("talking_head", 58, motion=0.30, texture=320.0),
        SequenceSpec("harbour", 67, motion=0.35, texture=400.0),
    )
    assert sum(s.frames for s in specs) == 582
    return specs


def generate_content(
    sequences: Sequence[SequenceSpec] | None = None,
    seed: int = 2005,
    limit: int | None = None,
) -> list[FrameContent]:
    """Expand sequence specs into per-frame content descriptors.

    ``limit`` stops generation after that many frames.  The AR(1) noise
    is drawn sequentially in frame order, so the truncated list is
    bit-identical to the prefix of the full benchmark — short-clip
    sessions (the fleet's common case) skip the unused tail's draws.
    """
    if sequences is None:
        sequences = paper_benchmark_sequences()
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    frames: list[FrameContent] = []
    index = 0
    for seq_id, spec in enumerate(sequences):
        if limit is not None and index >= limit:
            break
        motion = spec.motion
        for k in range(spec.frames):
            if limit is not None and index >= limit:
                break
            if k == 0:
                motion = spec.motion
            else:
                noise = rng.normal(0.0, spec.motion_wobble)
                motion = (
                    spec.motion
                    + spec.motion_persistence * (motion - spec.motion)
                    + noise
                )
            motion = float(np.clip(motion, 0.02, 0.98))
            texture = float(
                spec.texture * np.clip(rng.normal(1.0, 0.05), 0.8, 1.2)
            )
            frames.append(
                FrameContent(
                    index=index,
                    sequence=seq_id,
                    frame_in_sequence=k,
                    is_scene_start=(k == 0),
                    motion_activity=motion,
                    texture_variance=texture,
                )
            )
            index += 1
    return frames


def mean_motion(frames: Sequence[FrameContent]) -> float:
    """Benchmark-wide mean motion activity (used to calibrate load)."""
    if not frames:
        raise ConfigurationError("no frames")
    return float(np.mean([f.motion_activity for f in frames]))


@dataclass(frozen=True)
class MotionLoadModel:
    """Maps motion activity to a Motion_Estimate mean-time scale.

    ``scale = base + slope * motion``; with the default benchmark
    (mean motion ~0.43) the expected scale is ~1, so the Fig. 5
    averages stay the benchmark-wide means while high-motion sequences
    push the encoder toward (never past) the worst case.
    """

    base: float = 0.55
    slope: float = 1.18

    def scale(self, motion_activity: float) -> float:
        return self.base + self.slope * motion_activity

    def scales(self, motion_activities: np.ndarray) -> np.ndarray:
        return self.base + self.slope * np.asarray(motion_activities)


def macroblock_motion(
    rng: np.random.Generator,
    frame_motion: float,
    macroblocks: int,
    spread: float = 0.08,
) -> np.ndarray:
    """Per-macroblock motion activity around the frame's activity."""
    values = rng.normal(frame_motion, spread, size=macroblocks)
    return np.clip(values, 0.02, 0.98)
