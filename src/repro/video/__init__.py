"""MPEG-4 encoder substrate.

The paper evaluates its controller on an STMicroelectronics MPEG-4
encoder.  That code is proprietary; this package provides the
documented substitute (DESIGN.md section 2):

* :mod:`repro.video.pipeline` — the Fig. 2 macroblock precedence graph
  with the published Fig. 5 timing tables;
* :mod:`repro.video.content` — the synthetic 582-frame / 9-sequence
  camera benchmark;
* :mod:`repro.video.rd_model` + :mod:`repro.video.ratecontrol` +
  :mod:`repro.video.encoder_model` — the analytic encoder (bits/PSNR);
* :mod:`repro.video.buffering` — input/output buffers of size K with
  skip-on-overflow;
* :mod:`repro.video.pixel` — a real pixel-level toy codec used to
  validate the analytic model's monotonicities.
"""

from repro.video.buffering import FrameBuffer
from repro.video.content import (
    FrameContent,
    SequenceSpec,
    generate_content,
    paper_benchmark_sequences,
)
from repro.video.encoder_model import AnalyticEncoder, FrameOutcome
from repro.video.pipeline import (
    ME_ACTION,
    MACROBLOCK_ACTIONS,
    macroblock_application,
    macroblock_graph,
    paper_timing_tables,
)
from repro.video.ratecontrol import RateControlConfig, VirtualBufferRateController
from repro.video.rd_model import RateDistortionModel

__all__ = [
    "AnalyticEncoder",
    "FrameBuffer",
    "FrameContent",
    "FrameOutcome",
    "MACROBLOCK_ACTIONS",
    "ME_ACTION",
    "RateControlConfig",
    "RateDistortionModel",
    "SequenceSpec",
    "VirtualBufferRateController",
    "generate_content",
    "macroblock_application",
    "macroblock_graph",
    "paper_benchmark_sequences",
    "paper_timing_tables",
]
