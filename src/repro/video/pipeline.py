"""The paper's MPEG-4 macroblock application (Fig. 2 + Fig. 5).

Each frame is split into ``N`` macroblocks of 256 pixels (16x16); the
encoder iterates the 9-action body below once per macroblock.  Our
reading of the Fig. 2 precedence graph follows standard MPEG-4 encoder
dataflow::

    Grab_Macro_Block -> Motion_Estimate -> Discrete_Cosine_Transform
        -> Quantize -> Intra_Predict -> Compress          (bitstream path)
           Quantize -> Inverse_Quantize
        -> Inverse_Discrete_Cosine_Transform -> Reconstruct  (decode loop)

The execution-time tables are the paper's Fig. 5, verbatim, in CPU
cycles: ``Motion_Estimate`` is the only quality-dependent action
(8 levels, 0-7); every other action has a fixed average/worst-case
pair.

``N = 1620`` (PAL SD, 720x576 / 16x16 macroblocks) is the default
iteration count; DESIGN.md section 3.3 explains how this reproduces the
paper's operating points against ``P = 320 Mcycles``.
"""

from __future__ import annotations

from repro.core.action import QualitySet
from repro.core.cycles import CyclicApplication
from repro.core.precedence import PrecedenceGraph
from repro.core.timing import QualityTimeTable

#: Action names as printed in Fig. 2.
GRAB_ACTION = "Grab_Macro_Block"
ME_ACTION = "Motion_Estimate"
DCT_ACTION = "Discrete_Cosine_Transform"
QUANT_ACTION = "Quantize"
INTRA_ACTION = "Intra_Predict"
COMPRESS_ACTION = "Compress"
IQUANT_ACTION = "Inverse_Quantize"
IDCT_ACTION = "Inverse_Discrete_Cosine_Transform"
RECONSTRUCT_ACTION = "Reconstruct"

#: All 9 macroblock actions in pipeline order.
MACROBLOCK_ACTIONS: tuple[str, ...] = (
    GRAB_ACTION,
    ME_ACTION,
    DCT_ACTION,
    QUANT_ACTION,
    INTRA_ACTION,
    COMPRESS_ACTION,
    IQUANT_ACTION,
    IDCT_ACTION,
    RECONSTRUCT_ACTION,
)

#: Fig. 5 (top): Motion_Estimate (average, worst case) per quality level.
MOTION_ESTIMATE_TIMES: dict[int, tuple[float, float]] = {
    0: (215.0, 1_000.0),
    1: (30_000.0, 100_000.0),
    2: (50_000.0, 200_000.0),
    3: (95_000.0, 350_000.0),
    4: (110_000.0, 500_000.0),
    5: (120_000.0, 1_200_000.0),
    6: (150_000.0, 1_200_000.0),
    7: (200_000.0, 1_500_000.0),
}

#: Fig. 5 (bottom): quality-independent actions (average, worst case).
FIXED_ACTION_TIMES: dict[str, tuple[float, float]] = {
    GRAB_ACTION: (12_000.0, 24_000.0),
    DCT_ACTION: (16_000.0, 16_000.0),
    QUANT_ACTION: (6_000.0, 13_000.0),
    INTRA_ACTION: (4_000.0, 4_000.0),
    COMPRESS_ACTION: (5_000.0, 50_000.0),
    IQUANT_ACTION: (4_000.0, 5_000.0),
    IDCT_ACTION: (20_000.0, 50_000.0),
    RECONSTRUCT_ACTION: (10_000.0, 13_000.0),
}

#: The paper's quality levels for the encoder.
ENCODER_QUALITY_LEVELS = QualitySet.from_range(8)

#: Default macroblocks per frame (PAL SD 720x576; see DESIGN.md 3.3).
DEFAULT_MACROBLOCKS = 1620


def macroblock_graph() -> PrecedenceGraph:
    """The Fig. 2 precedence graph of one macroblock."""
    return PrecedenceGraph.from_edges(
        [
            (GRAB_ACTION, ME_ACTION),
            (ME_ACTION, DCT_ACTION),
            (DCT_ACTION, QUANT_ACTION),
            (QUANT_ACTION, INTRA_ACTION),
            (INTRA_ACTION, COMPRESS_ACTION),
            (QUANT_ACTION, IQUANT_ACTION),
            (IQUANT_ACTION, IDCT_ACTION),
            (IDCT_ACTION, RECONSTRUCT_ACTION),
        ],
        actions=MACROBLOCK_ACTIONS,
    )


def paper_timing_tables() -> tuple[QualityTimeTable, QualityTimeTable]:
    """The Fig. 5 tables as (average, worst-case) QualityTimeTables."""
    quality_set = ENCODER_QUALITY_LEVELS
    av_entries: dict[str, object] = {
        ME_ACTION: {q: av for q, (av, _) in MOTION_ESTIMATE_TIMES.items()}
    }
    wc_entries: dict[str, object] = {
        ME_ACTION: {q: wc for q, (_, wc) in MOTION_ESTIMATE_TIMES.items()}
    }
    for action, (av, wc) in FIXED_ACTION_TIMES.items():
        av_entries[action] = av
        wc_entries[action] = wc
    return (
        QualityTimeTable(quality_set, av_entries),
        QualityTimeTable(quality_set, wc_entries),
    )


def macroblock_application(macroblocks: int = DEFAULT_MACROBLOCKS) -> CyclicApplication:
    """The encoder as a cyclic application: Fig. 2 body iterated N times."""
    average, worst = paper_timing_tables()
    return CyclicApplication(
        body=macroblock_graph(),
        iterations=macroblocks,
        quality_set=ENCODER_QUALITY_LEVELS,
        average_times=average,
        worst_times=worst,
    )


def per_macroblock_average_load(quality: int) -> float:
    """Average cycles for one macroblock with ME at ``quality``."""
    fixed = sum(av for av, _ in FIXED_ACTION_TIMES.values())
    return fixed + MOTION_ESTIMATE_TIMES[quality][0]


def per_macroblock_worst_load(quality: int) -> float:
    """Worst-case cycles for one macroblock with ME at ``quality``."""
    fixed = sum(wc for _, wc in FIXED_ACTION_TIMES.values())
    return fixed + MOTION_ESTIMATE_TIMES[quality][1]
