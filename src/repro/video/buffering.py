"""Input/output frame buffers (Fig. 3 architecture).

"It uses input and output buffers of the same size K, to cope with
changes of load and avoid as much as possible frame skips.  These may
happen when the input buffer is full."

Semantics implemented (and asserted by tests):

* the buffer holds frames that have *arrived but not started encoding*
  (the frame being encoded occupies the encoder, not the buffer);
* an arrival finding ``K`` frames waiting is dropped — that frame is
  *skipped* and the decoder will redisplay its predecessor;
* the maximal input latency for a frame that is not skipped is
  ``K * P``: it waits behind at most ``K - 1`` others plus its own
  encoding budget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.errors import ConfigurationError

T = TypeVar("T")


@dataclass
class FrameBuffer(Generic[T]):
    """A bounded FIFO that drops (and counts) overflowing arrivals."""

    capacity: int
    _queue: deque = field(default_factory=deque, repr=False)
    dropped: int = 0
    accepted: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(f"buffer capacity must be >= 1, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._queue

    def try_push(self, item: T) -> bool:
        """Accept an arrival, or drop it (returns False) when full."""
        if self.full:
            self.dropped += 1
            return False
        self._queue.append(item)
        self.accepted += 1
        return True

    def peek(self) -> T:
        if not self._queue:
            raise ConfigurationError("cannot peek an empty buffer")
        return self._queue[0]

    def pop(self) -> T:
        """Remove and return the oldest frame (starting its encoding)."""
        if not self._queue:
            raise ConfigurationError("cannot pop an empty buffer")
        return self._queue.popleft()

    def clear(self) -> None:
        self._queue.clear()
