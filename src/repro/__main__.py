"""``python -m repro`` — run a serving spec from the command line.

The CLI is a thin shell over :func:`repro.serve` plus the telemetry
observers, so a spec document runs with full observability and zero
code::

    python -m repro serve spec.json --events out.jsonl --metrics-window 50
    cat spec.json | python -m repro serve - --invariants enforce --perf

Exit status: ``0`` on a clean run, ``1`` when recorded invariants were
violated (or enforcement aborted the run), ``2`` on a configuration
error (bad spec, bad flags).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigurationError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Serve multimedia streams from a declarative spec.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="run a ServingSpec JSON document end to end"
    )
    serve.add_argument(
        "spec",
        help="path to a ServingSpec JSON file, or '-' to read stdin",
    )
    serve.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="stream every lifecycle event to PATH as deterministic JSONL",
    )
    serve.add_argument(
        "--metrics-window",
        metavar="N",
        type=int,
        default=0,
        help="collect tumbling-window telemetry every N rounds (0 = off)",
    )
    serve.add_argument(
        "--watch",
        metavar="N",
        type=int,
        default=0,
        help="print the live telemetry window to stderr as a JSON line "
        "every N rounds (0 = off); long-horizon runs use this to watch "
        "an always-on cluster without waiting for the final summary",
    )
    serve.add_argument(
        "--invariants",
        choices=("off", "record", "enforce"),
        default="record",
        help="check the runtime invariant ledger: record violations "
        "(default), enforce (abort at the first), or off",
    )
    serve.add_argument(
        "--perf",
        action="store_true",
        help="time controller phases and print the breakdown",
    )
    serve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record one causal span tree per session and write the "
        "trace log to PATH as deterministic JSONL",
    )
    serve.add_argument(
        "--incidents",
        action="store_true",
        help="attribute every fired SLO burn-rate alert to ranked "
        "causes and print the incident report (the spec must declare "
        "slos; implies collecting traces)",
    )
    serve.add_argument(
        "--incidents-out",
        metavar="PATH",
        default=None,
        help="also write the incident report to PATH as canonical JSON "
        "(implies --incidents)",
    )
    serve.add_argument(
        "--timeline",
        metavar="N",
        type=int,
        default=0,
        help="print the last N events as a timeline table (0 = off)",
    )
    return parser


def _read_spec(source: str):
    if source == "-":
        text = sys.stdin.read()
    else:
        path = Path(source)
        if not path.exists():
            raise ConfigurationError(f"spec file not found: {source}")
        text = path.read_text()
    try:
        return json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(
            f"spec is not valid JSON: {error}"
        ) from None


def _cmd_serve(args) -> int:
    import repro
    from repro.analysis.report import (
        incident_table,
        invariant_table,
        slo_table,
        telemetry_table,
        timeline_table,
    )
    from repro.obs import (
        InvariantObserver,
        InvariantViolationError,
        PerfObserver,
        SloObserver,
        StructuredEventLog,
        TelemetryObserver,
        TraceObserver,
        attribute_incidents,
        canonical_document,
    )
    from repro.serving.observers import RoundObserver
    from repro.serving.runner import _coerce_spec

    class Watch(RoundObserver):
        """Live progress: the in-flight telemetry window, one JSON
        line to stderr every ``every`` rounds (first shard's hook
        only — ``current()`` is a mid-window snapshot either way).
        With SLOs declared, each line also carries every objective's
        current error-budget remaining and alert state under ``slo``."""

        def __init__(self, telemetry, every, slo=None):
            self.telemetry = telemetry
            self.every = every
            self.slo = slo
            self._printed = -1

        def on_round(self, round_index, allocations, capacity,
                     shard_id=None):
            # fire on the last round of each N-block, while the
            # window is still open — current() then covers the whole
            # block instead of the single round that just opened it
            if (
                (round_index + 1) % self.every == 0
                and round_index != self._printed
            ):
                self._printed = round_index
                snapshot = {"round": round_index, **self.telemetry.current()}
                if self.slo is not None:
                    snapshot["slo"] = self.slo.status()
                line = json.dumps(snapshot, sort_keys=True)
                print(line, file=sys.stderr, flush=True)

    spec = _coerce_spec(_read_spec(args.spec))
    if args.watch < 0:
        raise ConfigurationError("--watch must be >= 0")
    want_incidents = args.incidents or args.incidents_out is not None
    if want_incidents and spec.slos is None:
        raise ConfigurationError(
            "--incidents needs the spec to declare slos (there is no "
            "error budget to attribute without an objective)"
        )

    observers = []
    telemetry = event_log = invariants = perf = None
    slo_observer = tracer = None
    if args.metrics_window:
        telemetry = TelemetryObserver(window=args.metrics_window)
        observers.append(telemetry)
    elif args.watch:
        # --watch alone still needs a telemetry source to snapshot
        telemetry = TelemetryObserver(window=args.watch)
        observers.append(telemetry)
    if spec.slos is not None:
        # built here rather than by serve()'s auto-attach so --watch
        # and the incident report read the same tracker state
        slo_observer = SloObserver(
            spec.slos, classes=spec.service_classes
        )
        observers.append(slo_observer)
    if args.watch:
        observers.append(Watch(telemetry, args.watch, slo=slo_observer))
    if args.events or args.timeline:
        event_log = StructuredEventLog(path=args.events)
        observers.append(event_log)
    if args.trace or want_incidents:
        tracer = TraceObserver(path=args.trace)
        observers.append(tracer)
    if args.invariants != "off":
        invariants = InvariantObserver(
            enforce=args.invariants == "enforce",
            classes=spec.service_classes,
            slos=spec.slos,
        )
        observers.append(invariants)
    if args.perf:
        perf = PerfObserver()
        observers.append(perf)

    try:
        result = repro.serve(spec, observers=observers)
    except InvariantViolationError as error:
        print(f"invariant violated: {error}", file=sys.stderr)
        return 1

    summary = result.summary()
    print(f"scenario: {result.scenario_name} ({result.topology})")
    for key, value in summary.items():
        print(f"  {key:>20}: {value}")

    if args.timeline and event_log is not None:
        print("\ntimeline (last {} events):".format(args.timeline))
        print(timeline_table(event_log.events, limit=args.timeline))
    if telemetry is not None:
        print(f"\ntelemetry windows ({telemetry.window} rounds each):")
        print(telemetry_table(telemetry.windows))
    if slo_observer is not None:
        print("\nslo error budgets:")
        print(slo_table(slo_observer.reports()))
    if want_incidents:
        incidents = attribute_incidents(slo_observer, tracer)
        print("\nincident report ({} fired alert{}):".format(
            len(incidents), "" if len(incidents) == 1 else "s"
        ))
        if incidents:
            print(incident_table(incidents))
        else:
            print("  no burn-rate alerts fired; nothing to attribute")
        if args.incidents_out:
            Path(args.incidents_out).write_text(canonical_document(
                [incident.to_dict() for incident in incidents]
            ) + "\n")
            print(f"wrote {len(incidents)} incidents to "
                  f"{args.incidents_out}")
    if invariants is not None:
        print("\ninvariant ledger:")
        print(invariant_table(invariants))
    if perf is not None:
        print("\ncontroller phase timing:")
        print(perf.report())
    if args.events:
        print(f"\nwrote {len(event_log.events)} events to {args.events}")
    if args.trace:
        print(f"\nwrote {len(tracer.records())} traces to {args.trace}")

    if invariants is not None and invariants.violations:
        for violation in invariants.violations:
            print(f"invariant violated: {violation}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _cmd_serve(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
