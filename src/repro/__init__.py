"""repro — reproduction of "Fine Grain QoS Control for Multimedia
Application Software" (Combaz, Fernandez, Lepley, Sifakis; DATE 2005).

The package implements the paper's QoS-control method in full —
precedence-graph application model, EDF scheduling, the
``Qual_Const_av`` / ``Qual_Const_wc`` quality constraints, the abstract
controller and its table-driven compiled form — plus every substrate
the evaluation depends on: a cycle-accounting platform simulator, a
synthetic MPEG-4-like encoder (analytic rate-distortion model and a
real pixel-level toy codec), frame buffering with skip-on-overflow,
rate control, and the baseline policies the paper compares against.

Quick start::

    from repro import mpeg4_encoder_application, TableDrivenController

    app = mpeg4_encoder_application(macroblocks=60)
    system = app.system(budget=12_000_000)
    controller = TableDrivenController(system)

Serving (the scaled-out layers) has one declarative entry point::

    import repro

    result = repro.serve({
        "scenario": {"name": "steady", "kwargs": {"count": 4}},
        "capacity": 64e6,
    })

See ``examples/quickstart.py``, ``examples/serving_spec.py``, and
README.md.
"""

from repro.core import (
    ControllerTables,
    CyclicApplication,
    DeadlineFunction,
    ParameterizedSystem,
    PrecedenceGraph,
    QualityAssignment,
    QualityDeadlineTable,
    QualitySet,
    QualityTimeTable,
    ReferenceController,
    TableDrivenController,
)

__version__ = "1.0.0"

__all__ = [
    "ControllerTables",
    "CyclicApplication",
    "DeadlineFunction",
    "ParameterizedSystem",
    "PolicySpec",
    "PrecedenceGraph",
    "QualityAssignment",
    "QualityDeadlineTable",
    "QualitySet",
    "QualityTimeTable",
    "ReferenceController",
    "RoundObserver",
    "ServiceClass",
    "ServingResult",
    "ServingSpec",
    "TableDrivenController",
    "__version__",
    "mpeg4_encoder_application",
    "serve",
]

#: Serving-layer names re-exported lazily (PEP 562) so importing the
#: core package stays light; ``repro.serve`` below is the entry point.
_SERVING_EXPORTS = (
    "PolicySpec",
    "RoundObserver",
    "ServingResult",
    "ServingSpec",
)

#: SLA-layer names re-exported lazily, same mechanism.
_SLA_EXPORTS = ("ServiceClass",)


def mpeg4_encoder_application(macroblocks: int = 1620) -> CyclicApplication:
    """The paper's MPEG-4 macroblock application (Fig. 2 graph, Fig. 5 tables).

    Convenience re-export of
    :func:`repro.video.pipeline.macroblock_application`.
    """
    from repro.video.pipeline import macroblock_application

    return macroblock_application(macroblocks)


def serve(spec, observers=()):
    """Run a declarative serving spec — fleet or cluster — end to end.

    The one serving entry point: ``spec`` is a
    :class:`~repro.serving.spec.ServingSpec`, its dict form, or a JSON
    string; returns a :class:`~repro.serving.result.ServingResult`.
    Convenience re-export of :func:`repro.serving.serve` (imported
    lazily — the serving layers load on first use).
    """
    from repro.serving import serve as serve_spec

    return serve_spec(spec, observers=observers)


def __getattr__(name: str):
    if name in _SERVING_EXPORTS:
        import repro.serving

        return getattr(repro.serving, name)
    if name in _SLA_EXPORTS:
        import repro.sla

        return getattr(repro.sla, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
