"""repro — reproduction of "Fine Grain QoS Control for Multimedia
Application Software" (Combaz, Fernandez, Lepley, Sifakis; DATE 2005).

The package implements the paper's QoS-control method in full —
precedence-graph application model, EDF scheduling, the
``Qual_Const_av`` / ``Qual_Const_wc`` quality constraints, the abstract
controller and its table-driven compiled form — plus every substrate
the evaluation depends on: a cycle-accounting platform simulator, a
synthetic MPEG-4-like encoder (analytic rate-distortion model and a
real pixel-level toy codec), frame buffering with skip-on-overflow,
rate control, and the baseline policies the paper compares against.

Quick start::

    from repro import mpeg4_encoder_application, TableDrivenController

    app = mpeg4_encoder_application(macroblocks=60)
    system = app.system(budget=12_000_000)
    controller = TableDrivenController(system)

See ``examples/quickstart.py`` and README.md.
"""

from repro.core import (
    ControllerTables,
    CyclicApplication,
    DeadlineFunction,
    ParameterizedSystem,
    PrecedenceGraph,
    QualityAssignment,
    QualityDeadlineTable,
    QualitySet,
    QualityTimeTable,
    ReferenceController,
    TableDrivenController,
)

__version__ = "1.0.0"

__all__ = [
    "ControllerTables",
    "CyclicApplication",
    "DeadlineFunction",
    "ParameterizedSystem",
    "PrecedenceGraph",
    "QualityAssignment",
    "QualityDeadlineTable",
    "QualitySet",
    "QualityTimeTable",
    "ReferenceController",
    "TableDrivenController",
    "__version__",
    "mpeg4_encoder_application",
]


def mpeg4_encoder_application(macroblocks: int = 1620) -> CyclicApplication:
    """The paper's MPEG-4 macroblock application (Fig. 2 graph, Fig. 5 tables).

    Convenience re-export of
    :func:`repro.video.pipeline.macroblock_application`.
    """
    from repro.video.pipeline import macroblock_application

    return macroblock_application(macroblocks)
